// Package ring provides the bounded lock-free MPSC/MPMC ring buffer the
// serving path uses for work hand-off: the transport server's in-flight
// request queue, the controller's background-fill feed, and the repair
// queue's worker dispatch all push into one of these instead of a Go
// channel.
//
// The design is the classic Dmitry Vyukov bounded MPMC queue: a
// power-of-two slot array addressed through a mask, one atomic sequence
// number per slot that encodes whether the slot is ready for a producer or
// a consumer, and CAS-advanced head/tail cursors kept on separate cache
// lines so producers and consumers do not false-share. Push never blocks:
// a full ring reports failure and the caller applies its own overload
// policy (the transport server answers "overloaded", the fill feed drops
// the fill). Consumers spin briefly and then park on an eventcount —
// an atomic waiter counter plus a one-token wake channel — so an idle
// server burns no CPU while a loaded one hands work over without ever
// touching a mutex.
//
// Sequentially consistent Go atomics make the park/unpark protocol sound:
// a producer signals only after publishing the slot (seq store), and a
// consumer re-polls after registering as a waiter, so for any push either
// the producer observes the waiter and sends a wake token, or the consumer
// observes the pushed slot — a wakeup is never lost. The wake channel
// holds at most one token, so a burst of pushes against parked consumers
// may collapse into a single pending token; to keep that from draining
// the backlog through one consumer serially, a woken consumer that claims
// an item re-publishes the token while the ring is still non-empty and
// other consumers remain parked (wake chaining — the same token-replenish
// invariant the repair queue documents). Spurious wakeups are benign: a
// woken consumer that finds the ring empty simply re-parks.
package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// cacheLinePad separates the producer and consumer cursors. 64 bytes
// covers x86-64 and most arm64 parts; being wrong only costs throughput.
type cacheLinePad [64]byte

type slot[T any] struct {
	// seq encodes the slot state relative to the cursors: seq == pos means
	// "free for the producer claiming position pos", seq == pos+1 means
	// "holds the value pushed at pos, free for the consumer", and after a
	// pop the slot is re-armed at pos+Cap for the producer's next lap.
	seq atomic.Uint64
	val T
}

// Buf is a bounded lock-free ring buffer. The zero value is not usable;
// construct with New.
type Buf[T any] struct {
	mask  uint64
	slots []slot[T]

	_    cacheLinePad
	tail atomic.Uint64 // next position a producer claims
	_    cacheLinePad
	head atomic.Uint64 // next position a consumer claims
	_    cacheLinePad

	// waiters counts consumers that are parked (or about to park) in
	// PopWait; producers only touch the wake channel when it is non-zero,
	// so the uncontended push path is two atomics and one load.
	waiters atomic.Int32
	wake    chan struct{}

	closedCh  chan struct{}
	closeOnce sync.Once

	// Telemetry for the obs layer; best-effort counters, not part of the
	// synchronization protocol. Successful push/pop totals are derived
	// from the cursors in Stats so the hot ops pay no extra atomics.
	rejects atomic.Int64
	parks   atomic.Int64
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2).
func New[T any](capacity int) *Buf[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	b := &Buf[T]{
		mask:     n - 1,
		slots:    make([]slot[T], n),
		wake:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	for i := range b.slots {
		b.slots[i].seq.Store(uint64(i))
	}
	return b
}

// Cap returns the ring's capacity.
func (b *Buf[T]) Cap() int { return int(b.mask + 1) }

// Len returns the approximate number of queued items.
func (b *Buf[T]) Len() int {
	n := int64(b.tail.Load()) - int64(b.head.Load())
	if n < 0 {
		n = 0
	}
	if max := int64(b.mask + 1); n > max {
		n = max
	}
	return int(n)
}

// TryPush enqueues v and wakes a parked consumer if one is registered.
// It returns false when the ring is full — the caller's overload policy
// decides what happens to v. Pushing to a closed ring is a caller bug;
// items pushed after Close may or may not be drained.
func (b *Buf[T]) TryPush(v T) bool {
	pos := b.tail.Load()
	for {
		s := &b.slots[pos&b.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if b.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				b.signal()
				return true
			}
			pos = b.tail.Load()
		case diff < 0:
			// The slot a full lap behind has not been consumed: full.
			b.rejects.Add(1)
			return false
		default:
			// Another producer claimed pos; reload.
			pos = b.tail.Load()
		}
	}
}

// TryPop dequeues the oldest item, or reports false when the ring is
// empty. Safe for concurrent consumers.
func (b *Buf[T]) TryPop() (T, bool) {
	var zero T
	pos := b.head.Load()
	for {
		s := &b.slots[pos&b.mask]
		seq := s.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if b.head.CompareAndSwap(pos, pos+1) {
				v := s.val
				s.val = zero // drop the reference so the GC can reclaim it
				s.seq.Store(pos + b.mask + 1)
				return v, true
			}
			pos = b.head.Load()
		case diff < 0:
			return zero, false
		default:
			pos = b.head.Load()
		}
	}
}

// PopBatch dequeues up to len(dst) items in one head advance and returns
// how many it claimed. The batch claim amortizes the consumer's atomics
// across the run — one CAS per batch instead of one per item — which is
// what lets a draining consumer keep bursty producers away from the full
// boundary. Safe for concurrent consumers.
func (b *Buf[T]) PopBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	var zero T
	for {
		pos := b.head.Load()
		// Measure the contiguous published run starting at head. The scan
		// races with other consumers; the CAS below detects that and
		// retries. A slot claimed by a producer that has not published yet
		// ends the run — items behind it wait for the next call.
		r := uint64(0)
		for r < uint64(len(dst)) {
			s := &b.slots[(pos+r)&b.mask]
			if int64(s.seq.Load())-int64(pos+r+1) != 0 {
				break
			}
			r++
		}
		if r == 0 {
			return 0
		}
		if !b.head.CompareAndSwap(pos, pos+r) {
			continue
		}
		for i := uint64(0); i < r; i++ {
			s := &b.slots[(pos+i)&b.mask]
			dst[i] = s.val
			s.val = zero
			s.seq.Store(pos + i + b.mask + 1)
		}
		return int(r)
	}
}

// PopBatchWait fills dst like PopBatch but parks until at least one item
// is available. Returns 0 with ok == false under the same conditions as
// PopWait: stop fired, or the ring is closed and drained.
func (b *Buf[T]) PopBatchWait(dst []T, stop <-chan struct{}) (int, bool) {
	// woken: same wake-chaining discipline as PopWait — a batch claim can
	// leave items behind (backlog longer than dst), and those must not
	// stall behind this consumer while its peers sleep.
	woken := false
	for {
		select {
		case <-stop:
			return 0, false
		default:
		}
		if n := b.PopBatch(dst); n > 0 {
			b.chainWake(woken)
			return n, true
		}
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if n := b.PopBatch(dst); n > 0 {
				b.chainWake(woken)
				return n, true
			}
		}
		select {
		case <-b.closedCh:
			n := b.PopBatch(dst)
			return n, n > 0
		default:
		}
		b.waiters.Add(1)
		if n := b.PopBatch(dst); n > 0 {
			b.waiters.Add(-1)
			b.chainWake(woken)
			return n, true
		}
		b.parks.Add(1)
		select {
		case <-b.wake:
			woken = true
		case <-b.closedCh:
		case <-stop:
			b.waiters.Add(-1)
			return 0, false
		}
		b.waiters.Add(-1)
	}
}

// signal hands one wake token to parked consumers. The channel holds at
// most one token: a dropped send means a token is already pending, and
// whichever consumer claims it chains the wake onward (see chainWake), so
// no pushed item is stranded behind a collapsed burst of signals.
func (b *Buf[T]) signal() {
	if b.waiters.Load() == 0 {
		return
	}
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// chainWake re-publishes the wake token a parked consumer consumed. A
// burst of N pushes against an idle pool collapses into one pending token
// (the channel holds at most one), so the single woken consumer must pass
// the baton before it goes off to process its item: if the ring still
// holds work and other consumers remain parked, send the token onward.
// Each link in the chain wakes one more consumer, so the whole pool spins
// up instead of one worker draining the backlog serially behind its own
// (possibly slow) handler. Both load checks race benignly: a missed
// waiter is still spinning and will re-poll, and an item pushed just
// after the emptiness check re-signals from its producer.
func (b *Buf[T]) chainWake(woken bool) {
	if !woken || b.waiters.Load() == 0 || b.Len() == 0 {
		return
	}
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// spinPops is how many yield-and-repoll rounds a consumer makes before
// parking. Kept tiny: on a loaded server the repoll wins immediately, and
// on an idle one we want to reach the parked state quickly.
const spinPops = 4

// PopWait dequeues the oldest item, parking until one arrives. It returns
// ok == false when stop becomes ready (shutdown requested by the consumer's
// owner — queued items are left for the owner to drain), or when the ring
// has been closed and fully drained. A nil stop channel never fires.
func (b *Buf[T]) PopWait(stop <-chan struct{}) (T, bool) {
	var zero T
	// woken records that this consumer consumed a wake token; a successful
	// pop then chains the wake onward so a burst collapsed into one token
	// still wakes the whole pool (see chainWake).
	woken := false
	for {
		select {
		case <-stop:
			return zero, false
		default:
		}
		if v, ok := b.TryPop(); ok {
			b.chainWake(woken)
			return v, true
		}
		for i := 0; i < spinPops; i++ {
			runtime.Gosched()
			if v, ok := b.TryPop(); ok {
				b.chainWake(woken)
				return v, true
			}
		}
		select {
		case <-b.closedCh:
			// Closed: drain whatever remains, then report exhaustion.
			return b.TryPop()
		default:
		}
		b.waiters.Add(1)
		// Re-poll after registering: this ordering is what guarantees a
		// concurrent producer either sees the waiter or we see its item.
		if v, ok := b.TryPop(); ok {
			b.waiters.Add(-1)
			b.chainWake(woken)
			return v, true
		}
		b.parks.Add(1)
		select {
		case <-b.wake:
			woken = true
		case <-b.closedCh:
		case <-stop:
			b.waiters.Add(-1)
			return zero, false
		}
		b.waiters.Add(-1)
	}
}

// Close marks the ring closed and wakes every parked consumer. Consumers
// drain the remaining items and then see ok == false from PopWait. The
// caller must have stopped all producers first.
func (b *Buf[T]) Close() {
	b.closeOnce.Do(func() { close(b.closedCh) })
}

// Stats is a point-in-time telemetry snapshot.
type Stats struct {
	Pushes  int64 // successful TryPush calls
	Pops    int64 // successful pops
	Rejects int64 // TryPush calls that found the ring full
	Parks   int64 // times a consumer went to sleep in PopWait
}

// Stats returns the ring's telemetry counters. Pushes and Pops are read
// from the cursors, so a claim that is still being published may be
// counted one early — fine for telemetry.
func (b *Buf[T]) Stats() Stats {
	return Stats{
		Pushes:  int64(b.tail.Load()),
		Pops:    int64(b.head.Load()),
		Rejects: b.rejects.Load(),
		Parks:   b.parks.Load(),
	}
}
