// Package queue provides service-time distributions and the M/G/1
// (Pollaczek-Khinchine) queueing formulas that underlie Sprout's latency
// bound: for each storage node the paper needs the first three moments of
// the chunk service time and, from them, the mean and variance of the
// response time Q_j at request intensity rho_j (eqs. (3)-(4)).
package queue

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dist is a service-time distribution. Implementations must provide the
// first three raw moments (used by the analytical model) and a sampler (used
// by the discrete-event simulator and the object-store substrate).
type Dist interface {
	// Mean returns E[X], the mean service time in seconds.
	Mean() float64
	// Moment2 returns E[X^2].
	Moment2() float64
	// Moment3 returns E[X^3].
	Moment3() float64
	// Sample draws one service time using the supplied random source.
	Sample(rng *rand.Rand) float64
}

// Variance returns Var[X] = E[X^2] - E[X]^2 for any distribution.
func Variance(d Dist) float64 {
	m := d.Mean()
	return d.Moment2() - m*m
}

// Exponential is an exponential service-time distribution with the given
// rate mu (mean 1/mu).
type Exponential struct {
	Rate float64
}

var _ Dist = Exponential{}

// NewExponential returns an exponential distribution with rate mu. It panics
// if mu <= 0.
func NewExponential(mu float64) Exponential {
	if mu <= 0 {
		panic(fmt.Sprintf("queue: exponential rate must be positive, got %v", mu))
	}
	return Exponential{Rate: mu}
}

func (e Exponential) Mean() float64    { return 1 / e.Rate }
func (e Exponential) Moment2() float64 { return 2 / (e.Rate * e.Rate) }
func (e Exponential) Moment3() float64 { return 6 / (e.Rate * e.Rate * e.Rate) }

func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// Deterministic is a constant service time.
type Deterministic struct {
	Value float64
}

var _ Dist = Deterministic{}

func (d Deterministic) Mean() float64               { return d.Value }
func (d Deterministic) Moment2() float64            { return d.Value * d.Value }
func (d Deterministic) Moment3() float64            { return d.Value * d.Value * d.Value }
func (d Deterministic) Sample(_ *rand.Rand) float64 { return d.Value }

// ShiftedExponential is a constant Shift plus an exponential tail with the
// given Rate. It is a common model for disk reads: a fixed seek/transfer
// component plus a random queue-less tail.
type ShiftedExponential struct {
	Shift float64
	Rate  float64
}

var _ Dist = ShiftedExponential{}

func (s ShiftedExponential) Mean() float64 { return s.Shift + 1/s.Rate }

func (s ShiftedExponential) Moment2() float64 {
	m1 := 1 / s.Rate
	m2 := 2 / (s.Rate * s.Rate)
	return s.Shift*s.Shift + 2*s.Shift*m1 + m2
}

func (s ShiftedExponential) Moment3() float64 {
	m1 := 1 / s.Rate
	m2 := 2 / (s.Rate * s.Rate)
	m3 := 6 / (s.Rate * s.Rate * s.Rate)
	return s.Shift*s.Shift*s.Shift + 3*s.Shift*s.Shift*m1 + 3*s.Shift*m2 + m3
}

func (s ShiftedExponential) Sample(rng *rand.Rand) float64 {
	return s.Shift + rng.ExpFloat64()/s.Rate
}

// Gamma is a gamma-distributed service time with shape Alpha and rate Beta
// (mean Alpha/Beta). It is used to calibrate distributions to a measured
// mean and variance (Table IV of the paper) because a gamma distribution is
// fully determined by those two values and has closed-form higher moments.
type Gamma struct {
	Alpha float64 // shape
	Beta  float64 // rate
}

var _ Dist = Gamma{}

// ErrInvalidMoments is returned when a measured mean/variance pair cannot be
// represented (non-positive values).
var ErrInvalidMoments = errors.New("queue: mean and variance must be positive")

// GammaFromMeanVar returns the gamma distribution with the given mean and
// variance, the calibration used for the Ceph-measured service times.
func GammaFromMeanVar(mean, variance float64) (Gamma, error) {
	if mean <= 0 || variance <= 0 {
		return Gamma{}, ErrInvalidMoments
	}
	alpha := mean * mean / variance
	beta := mean / variance
	return Gamma{Alpha: alpha, Beta: beta}, nil
}

func (g Gamma) Mean() float64 { return g.Alpha / g.Beta }

func (g Gamma) Moment2() float64 { return g.Alpha * (g.Alpha + 1) / (g.Beta * g.Beta) }

func (g Gamma) Moment3() float64 {
	return g.Alpha * (g.Alpha + 1) * (g.Alpha + 2) / (g.Beta * g.Beta * g.Beta)
}

// Sample draws from the gamma distribution using Marsaglia-Tsang for
// alpha >= 1 and the boost transform for alpha < 1.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	alpha := g.Alpha
	if alpha < 1 {
		// Use the transformation X(alpha) = X(alpha+1) * U^(1/alpha).
		u := rng.Float64()
		return Gamma{Alpha: alpha + 1, Beta: g.Beta}.Sample(rng) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v / g.Beta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v / g.Beta
		}
	}
}

// Empirical is a distribution backed by observed samples. It is used to feed
// measured chunk service times (e.g. from the object-store substrate) back
// into the analytical model.
type Empirical struct {
	samples []float64
	m1      float64
	m2      float64
	m3      float64
}

var _ Dist = (*Empirical)(nil)

// NewEmpirical builds an empirical distribution from samples. It returns an
// error if no samples are provided.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, errors.New("queue: empirical distribution needs at least one sample")
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	var m1, m2, m3 float64
	for _, s := range cp {
		m1 += s
		m2 += s * s
		m3 += s * s * s
	}
	n := float64(len(cp))
	return &Empirical{samples: cp, m1: m1 / n, m2: m2 / n, m3: m3 / n}, nil
}

func (e *Empirical) Mean() float64    { return e.m1 }
func (e *Empirical) Moment2() float64 { return e.m2 }
func (e *Empirical) Moment3() float64 { return e.m3 }

func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.samples[rng.Intn(len(e.samples))]
}

// Quantile returns the q-quantile (0 <= q <= 1) of the empirical samples.
func (e *Empirical) Quantile(q float64) float64 {
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	idx := int(q * float64(len(e.samples)-1))
	return e.samples[idx]
}

// CDF evaluates the empirical cumulative distribution function at x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.samples, x)
	for i < len(e.samples) && e.samples[i] <= x {
		i++
	}
	return float64(i) / float64(len(e.samples))
}

// Scaled wraps a distribution and multiplies every sample and moment by a
// constant factor. It is used to derive service times for different chunk
// sizes from a single calibrated base distribution.
type Scaled struct {
	Base   Dist
	Factor float64
}

var _ Dist = Scaled{}

func (s Scaled) Mean() float64    { return s.Factor * s.Base.Mean() }
func (s Scaled) Moment2() float64 { return s.Factor * s.Factor * s.Base.Moment2() }
func (s Scaled) Moment3() float64 {
	return s.Factor * s.Factor * s.Factor * s.Base.Moment3()
}
func (s Scaled) Sample(rng *rand.Rand) float64 { return s.Factor * s.Base.Sample(rng) }
