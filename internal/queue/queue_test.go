package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestExponentialMoments(t *testing.T) {
	e := NewExponential(2.0)
	if !approxEqual(e.Mean(), 0.5, 1e-12) {
		t.Fatalf("mean = %v", e.Mean())
	}
	if !approxEqual(e.Moment2(), 0.5, 1e-12) {
		t.Fatalf("m2 = %v", e.Moment2())
	}
	if !approxEqual(e.Moment3(), 0.75, 1e-12) {
		t.Fatalf("m3 = %v", e.Moment3())
	}
	if !approxEqual(Variance(e), 0.25, 1e-12) {
		t.Fatalf("var = %v", Variance(e))
	}
}

func TestExponentialInvalidRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	NewExponential(0)
}

func TestDeterministicMoments(t *testing.T) {
	d := Deterministic{Value: 3}
	if d.Mean() != 3 || d.Moment2() != 9 || d.Moment3() != 27 {
		t.Fatal("deterministic moments wrong")
	}
	if Variance(d) != 0 {
		t.Fatal("deterministic variance should be zero")
	}
	if d.Sample(nil) != 3 {
		t.Fatal("deterministic sample wrong")
	}
}

func TestShiftedExponentialMoments(t *testing.T) {
	s := ShiftedExponential{Shift: 1, Rate: 2}
	// Mean = 1 + 0.5 = 1.5
	if !approxEqual(s.Mean(), 1.5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Var must equal the exponential part's variance 1/rate^2 = 0.25.
	if !approxEqual(Variance(s), 0.25, 1e-12) {
		t.Fatalf("var = %v", Variance(s))
	}
}

func TestGammaFromMeanVar(t *testing.T) {
	g, err := GammaFromMeanVar(147.8462, 388.9872) // 16MB chunk from Table IV
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(g.Mean(), 147.8462, 1e-9) {
		t.Fatalf("mean = %v", g.Mean())
	}
	if !approxEqual(Variance(g), 388.9872, 1e-9) {
		t.Fatalf("var = %v", Variance(g))
	}
	if g.Moment3() <= g.Moment2()*g.Mean() {
		t.Fatal("third moment should exceed m2*m1 for a positive-variance distribution")
	}
}

func TestGammaFromMeanVarInvalid(t *testing.T) {
	if _, err := GammaFromMeanVar(-1, 1); err == nil {
		t.Fatal("expected error for negative mean")
	}
	if _, err := GammaFromMeanVar(1, 0); err == nil {
		t.Fatal("expected error for zero variance")
	}
}

func TestSamplersMatchMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := map[string]Dist{
		"exp":     NewExponential(0.1),
		"shifted": ShiftedExponential{Shift: 2, Rate: 0.5},
		"gamma":   Gamma{Alpha: 3, Beta: 0.2},
		"gamma<1": Gamma{Alpha: 0.5, Beta: 1},
	}
	const n = 200000
	for name, d := range dists {
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if x < 0 {
				t.Fatalf("%s: negative sample %v", name, x)
			}
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		m2 := sum2 / n
		if !approxEqual(mean, d.Mean(), 0.03) {
			t.Errorf("%s: sample mean %v vs analytic %v", name, mean, d.Mean())
		}
		if !approxEqual(m2, d.Moment2(), 0.06) {
			t.Errorf("%s: sample m2 %v vs analytic %v", name, m2, d.Moment2())
		}
	}
}

func TestEmpirical(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 5}
	e, err := NewEmpirical(samples)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(e.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", e.Mean())
	}
	if !approxEqual(e.Moment2(), 11, 1e-12) {
		t.Fatalf("m2 = %v", e.Moment2())
	}
	if e.CDF(0.5) != 0 {
		t.Fatal("CDF below min should be 0")
	}
	if e.CDF(5) != 1 {
		t.Fatal("CDF at max should be 1")
	}
	if e.CDF(2.5) != 0.4 {
		t.Fatalf("CDF(2.5) = %v, want 0.4", e.CDF(2.5))
	}
	if e.Quantile(0) != 1 || e.Quantile(1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		s := e.Sample(rng)
		if s < 1 || s > 5 {
			t.Fatalf("empirical sample %v outside range", s)
		}
	}
}

func TestEmpiricalEmpty(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("expected error for empty samples")
	}
}

func TestScaled(t *testing.T) {
	base := NewExponential(1)
	s := Scaled{Base: base, Factor: 4}
	if !approxEqual(s.Mean(), 4, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !approxEqual(s.Moment2(), 32, 1e-12) {
		t.Fatalf("m2 = %v", s.Moment2())
	}
	if !approxEqual(s.Moment3(), 384, 1e-12) {
		t.Fatalf("m3 = %v", s.Moment3())
	}
}

func TestStatsFromDistAndResponse(t *testing.T) {
	// For M/M/1 (exponential service), the mean response time has the simple
	// closed form 1/(mu - lambda); the PK formula must agree.
	mu, lambda := 0.1, 0.05
	stats := StatsFromDist(NewExponential(mu))
	resp, err := stats.Response(lambda)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (mu - lambda)
	if !approxEqual(resp.Mean, want, 1e-9) {
		t.Fatalf("M/M/1 mean response = %v, want %v", resp.Mean, want)
	}
	if resp.Rho != 0.5 {
		t.Fatalf("rho = %v, want 0.5", resp.Rho)
	}
}

func TestResponseUnstable(t *testing.T) {
	stats := StatsFromDist(NewExponential(1))
	if _, err := stats.Response(1.0); err == nil {
		t.Fatal("expected ErrUnstable at rho = 1")
	}
	if _, err := stats.Response(2.0); err == nil {
		t.Fatal("expected ErrUnstable at rho > 1")
	}
	if _, err := stats.Response(-1); err == nil {
		t.Fatal("expected error for negative arrival rate")
	}
}

func TestResponseMonotoneInLambda(t *testing.T) {
	// Both mean and variance of the response time must be nondecreasing in
	// the arrival rate for a stable queue.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.05 + rng.Float64()
		stats := StatsFromDist(NewExponential(mu))
		l1 := rng.Float64() * mu * 0.9
		l2 := l1 + rng.Float64()*(mu*0.95-l1)
		r1, err1 := stats.Response(l1)
		r2, err2 := stats.Response(l2)
		if err1 != nil || err2 != nil {
			return true
		}
		return r2.Mean >= r1.Mean-1e-12 && r2.Variance >= r1.Variance-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFromMoments(t *testing.T) {
	s, err := StatsFromMoments(2, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqual(s.Mu, 0.5, 1e-12) || !approxEqual(s.Sigma2, 2, 1e-12) {
		t.Fatalf("stats = %+v", s)
	}
	if _, err := StatsFromMoments(0, 1, 1); err == nil {
		t.Fatal("expected error for zero mean")
	}
}

func TestMaxStableRate(t *testing.T) {
	s := StatsFromDist(NewExponential(10))
	r := s.MaxStableRate(0.1)
	if !approxEqual(r, 9, 1e-12) {
		t.Fatalf("MaxStableRate = %v", r)
	}
	// Invalid epsilon falls back to a default safety margin.
	r = s.MaxStableRate(-5)
	if r >= 10 || r <= 0 {
		t.Fatalf("fallback MaxStableRate = %v", r)
	}
	if _, err := s.Response(r); err != nil {
		t.Fatalf("MaxStableRate should be stable: %v", err)
	}
}
