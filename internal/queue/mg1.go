package queue

import (
	"errors"
	"fmt"
)

// NodeStats captures the service-time statistics of a storage node that the
// latency bound needs: service rate mu = 1/E[X], variance sigma^2, the second
// raw moment Gamma^2 = E[X^2] and the third raw moment GammaHat^3 = E[X^3].
// The naming follows the paper's notation.
type NodeStats struct {
	Mu        float64 // service rate, 1/E[X]
	Sigma2    float64 // Var[X]
	Gamma2    float64 // E[X^2]
	GammaHat3 float64 // E[X^3]
}

// ErrUnstable is returned when a node's request intensity rho = Lambda/mu is
// at or above 1, i.e. the M/G/1 queue has no steady state.
var ErrUnstable = errors.New("queue: request intensity rho >= 1, queue unstable")

// StatsFromDist derives NodeStats from a service-time distribution.
func StatsFromDist(d Dist) NodeStats {
	m := d.Mean()
	return NodeStats{
		Mu:        1 / m,
		Sigma2:    Variance(d),
		Gamma2:    d.Moment2(),
		GammaHat3: d.Moment3(),
	}
}

// StatsFromMoments derives NodeStats directly from measured raw moments.
func StatsFromMoments(mean, m2, m3 float64) (NodeStats, error) {
	if mean <= 0 || m2 <= 0 || m3 <= 0 {
		return NodeStats{}, fmt.Errorf("queue: moments must be positive (mean=%v m2=%v m3=%v)", mean, m2, m3)
	}
	return NodeStats{
		Mu:        1 / mean,
		Sigma2:    m2 - mean*mean,
		Gamma2:    m2,
		GammaHat3: m3,
	}, nil
}

// ResponseMoments holds the mean and variance of the response time Q_j of an
// M/G/1 queue at a given chunk arrival rate, computed from the
// Pollaczek-Khinchine formulas used by the paper (eqs. (3)-(4)).
type ResponseMoments struct {
	Mean     float64 // E[Q_j]
	Variance float64 // Var[Q_j]
	Rho      float64 // request intensity Lambda_j / mu_j
}

// Response computes E[Q] and Var[Q] for the node when chunk requests arrive
// at rate lambda (a Poisson process). It returns ErrUnstable when rho >= 1.
//
//	E[Q]   = 1/mu + lambda*Gamma^2 / (2(1-rho))
//	Var[Q] = sigma^2 + lambda*GammaHat^3/(3(1-rho)) + lambda^2*Gamma^4/(4(1-rho)^2)
func (s NodeStats) Response(lambda float64) (ResponseMoments, error) {
	if lambda < 0 {
		return ResponseMoments{}, fmt.Errorf("queue: negative arrival rate %v", lambda)
	}
	rho := lambda / s.Mu
	if rho >= 1 {
		return ResponseMoments{Rho: rho}, ErrUnstable
	}
	mean := 1/s.Mu + lambda*s.Gamma2/(2*(1-rho))
	variance := s.Sigma2 +
		lambda*s.GammaHat3/(3*(1-rho)) +
		lambda*lambda*s.Gamma2*s.Gamma2/(4*(1-rho)*(1-rho))
	return ResponseMoments{Mean: mean, Variance: variance, Rho: rho}, nil
}

// MaxStableRate returns the largest chunk arrival rate that keeps the node
// stable with the given safety margin epsilon in (0,1): lambda < mu*(1-eps).
func (s NodeStats) MaxStableRate(epsilon float64) float64 {
	if epsilon <= 0 || epsilon >= 1 {
		epsilon = 0.01
	}
	return s.Mu * (1 - epsilon)
}
