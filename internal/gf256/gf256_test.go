package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXORAndSelfInverse(t *testing.T) {
	f := func(a, b byte) bool {
		return Add(a, b) == (a^b) && Add(Add(a, b), b) == a && Sub(a, b) == Add(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < Order; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Fatalf("Mul(%d,1)=%d", a, got)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Fatalf("Mul(%d,0)=%d", a, got)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInverse(t *testing.T) {
	for a := 1; a < Order; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("Mul(%d, Inv(%d)) = %d, want 1", a, a, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x,0) did not panic")
		}
	}()
	Div(5, 0)
}

func TestDivIsMulByInverse(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExp(t *testing.T) {
	for a := 0; a < Order; a++ {
		// a^1 == a, a^0 == 1
		if Exp(byte(a), 1) != byte(a) {
			t.Fatalf("Exp(%d,1) != %d", a, a)
		}
		if Exp(byte(a), 0) != 1 {
			t.Fatalf("Exp(%d,0) != 1", a)
		}
	}
	// a^(i+j) == a^i * a^j
	f := func(a byte, i, j uint8) bool {
		return Exp(a, int(i)+int(j)) == Mul(Exp(a, int(i)), Exp(a, int(j)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorIsPrimitive(t *testing.T) {
	// The generator must produce every non-zero element before cycling.
	seen := make(map[byte]bool)
	x := byte(1)
	for i := 0; i < Order-1; i++ {
		if seen[x] {
			t.Fatalf("generator cycled early at step %d", i)
		}
		seen[x] = true
		x = Mul(x, Generator())
	}
	if len(seen) != Order-1 {
		t.Fatalf("generator produced %d distinct elements, want %d", len(seen), Order-1)
	}
}

func TestMulSliceAccumulates(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := []byte{10, 20, 30, 40, 50}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = Add(dst[i], Mul(7, src[i]))
	}
	MulSlice(7, src, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulSlice mismatch at %d: got %d want %d", i, dst[i], want[i])
		}
	}
}

func TestMulSliceZeroCoefficientNoop(t *testing.T) {
	src := []byte{9, 9, 9}
	dst := []byte{1, 2, 3}
	MulSlice(0, src, dst)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("MulSlice with zero coefficient modified dst: %v", dst)
	}
}

func TestMulSliceAssign(t *testing.T) {
	src := []byte{0, 1, 5, 200}
	dst := make([]byte, len(src))
	MulSliceAssign(3, src, dst)
	for i := range src {
		if dst[i] != Mul(3, src[i]) {
			t.Fatalf("MulSliceAssign mismatch at %d", i)
		}
	}
	MulSliceAssign(0, src, dst)
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("MulSliceAssign with zero coefficient should zero dst")
		}
	}
}

func TestMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	MulSlice(1, []byte{1, 2}, []byte{1})
}
