package gf256

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityIsIdentity(t *testing.T) {
	for n := 1; n <= 8; n++ {
		if !Identity(n).IsIdentity() {
			t.Fatalf("Identity(%d) failed IsIdentity", n)
		}
	}
}

func TestMatrixMulByIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			m.Data[r][c] = byte(rng.Intn(256))
		}
	}
	if !m.Mul(Identity(4)).Equal(m) {
		t.Fatal("m * I != m")
	}
	if !Identity(4).Mul(m).Equal(m) {
		t.Fatal("I * m != m")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		m := NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				m.Data[r][c] = byte(rng.Intn(256))
			}
		}
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix, skip
		}
		if !m.Mul(inv).IsIdentity() {
			t.Fatalf("m * m^-1 != I for\n%v", m)
		}
		if !inv.Mul(m).IsIdentity() {
			t.Fatalf("m^-1 * m != I for\n%v", m)
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Data[0][0], m.Data[0][1] = 1, 2
	m.Data[1][0], m.Data[1][1] = 1, 2 // duplicate row -> singular
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
}

func TestInvertNonSquare(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Invert(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestCauchyAllSquareSubmatricesInvertible(t *testing.T) {
	// Every square submatrix of a Cauchy matrix must be invertible. Check all
	// 1x1, 2x2 and 3x3 submatrices of a modest Cauchy matrix.
	c := Cauchy(6, 4)
	rows, cols := 6, 4
	// 1x1: all entries non-zero.
	for r := 0; r < rows; r++ {
		for cc := 0; cc < cols; cc++ {
			if c.Data[r][cc] == 0 {
				t.Fatalf("cauchy entry (%d,%d) is zero", r, cc)
			}
		}
	}
	// 2x2 submatrices.
	for r1 := 0; r1 < rows; r1++ {
		for r2 := r1 + 1; r2 < rows; r2++ {
			for c1 := 0; c1 < cols; c1++ {
				for c2 := c1 + 1; c2 < cols; c2++ {
					det := Add(Mul(c.Data[r1][c1], c.Data[r2][c2]), Mul(c.Data[r1][c2], c.Data[r2][c1]))
					if det == 0 {
						t.Fatalf("2x2 cauchy submatrix (%d,%d)x(%d,%d) singular", r1, r2, c1, c2)
					}
				}
			}
		}
	}
}

func TestVandermondeStructure(t *testing.T) {
	v := Vandermonde(5, 3)
	for r := 0; r < 5; r++ {
		for c := 0; c < 3; c++ {
			if v.Data[r][c] != Exp(byte(r), c) {
				t.Fatalf("vandermonde entry (%d,%d) wrong", r, c)
			}
		}
	}
}

func TestSelectRowsAndSubMatrix(t *testing.T) {
	m := Vandermonde(6, 3)
	sel := m.SelectRows([]int{0, 2, 4})
	if sel.Rows != 3 || sel.Cols != 3 {
		t.Fatalf("SelectRows dims %dx%d", sel.Rows, sel.Cols)
	}
	for i, r := range []int{0, 2, 4} {
		for c := 0; c < 3; c++ {
			if sel.Data[i][c] != m.Data[r][c] {
				t.Fatal("SelectRows copied wrong data")
			}
		}
	}
	sub := m.SubMatrix(1, 3, 0, 2)
	if sub.Rows != 2 || sub.Cols != 2 {
		t.Fatalf("SubMatrix dims %dx%d", sub.Rows, sub.Cols)
	}
}

func TestMulVecMatchesScalarPath(t *testing.T) {
	f := func(a0, a1, b0, b1, m00, m01, m10, m11 byte) bool {
		m := NewMatrix(2, 2)
		m.Data[0][0], m.Data[0][1] = m00, m01
		m.Data[1][0], m.Data[1][1] = m10, m11
		vecs := [][]byte{{a0, a1}, {b0, b1}}
		out := m.MulVec(vecs)
		want0 := Add(Mul(m00, a0), Mul(m01, b0))
		want1 := Add(Mul(m10, a0), Mul(m11, b0))
		return out[0][0] == want0 && out[1][0] == want1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(3)
	c := m.Clone()
	c.Data[0][0] = 99
	if m.Data[0][0] != 1 {
		t.Fatal("Clone shares backing storage with original")
	}
}

func TestAugment(t *testing.T) {
	a := Identity(2)
	b := NewMatrix(2, 1)
	b.Data[0][0], b.Data[1][0] = 7, 8
	aug := a.Augment(b)
	if aug.Cols != 3 || aug.Data[0][2] != 7 || aug.Data[1][2] != 8 {
		t.Fatalf("Augment produced wrong matrix:\n%v", aug)
	}
}
