//go:build amd64

package gf256

// asmEnabled selects the AVX2 PSHUFB kernels when the CPU and OS support
// them. It is a variable (not a build-time constant) so tests can force the
// generic path.
var asmEnabled = detectAVX2()

// cpuid executes the CPUID instruction. Implemented in kernels_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0. Implemented in kernels_amd64.s.
func xgetbv() (eax, edx uint32)

// detectAVX2 reports whether the CPU supports AVX2 and the OS saves YMM
// state across context switches (OSXSAVE + XCR0 bits 1 and 2).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}

// mulAddVecAVX2 computes dst[i] ^= c*src[i] for n bytes (n a multiple of
// 32, n > 0) using the nibble tables. Implemented in kernels_amd64.s.
func mulAddVecAVX2(low, high *[16]byte, src, dst *byte, n int)

// mulAssignVecAVX2 computes dst[i] = c*src[i] likewise.
func mulAssignVecAVX2(low, high *[16]byte, src, dst *byte, n int)

// mulAddAsm runs the AVX2 accumulate kernel over the largest 32-byte
// multiple prefix and returns how many bytes it handled.
func mulAddAsm(c byte, src, dst []byte) int {
	n := len(src) &^ 31
	if n > 0 {
		mulAddVecAVX2(&mulTableLow[c], &mulTableHigh[c], &src[0], &dst[0], n)
	}
	return n
}

// mulAssignAsm runs the AVX2 assign kernel over the largest 32-byte
// multiple prefix and returns how many bytes it handled.
func mulAssignAsm(c byte, src, dst []byte) int {
	n := len(src) &^ 31
	if n > 0 {
		mulAssignVecAVX2(&mulTableLow[c], &mulTableHigh[c], &src[0], &dst[0], n)
	}
	return n
}
