//go:build !amd64

package gf256

// asmEnabled is false on targets without an assembly kernel; all slice
// multiplies go through the generic nibble-table loops.
var asmEnabled = false

func mulAddAsm(c byte, src, dst []byte) int    { return 0 }
func mulAssignAsm(c byte, src, dst []byte) int { return 0 }
