//go:build amd64

#include "textflag.h"

// 0x0f in every byte lane, for extracting nibbles.
DATA nibbleMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulAddVecAVX2(low, high *[16]byte, src, dst *byte, n int)
//
// dst[i] ^= c*src[i] for i in [0, n), n a positive multiple of 32.
// Each 32-byte vector is split into low/high nibbles; VPSHUFB indexes the
// broadcast 16-entry product tables with the nibbles, giving 32 GF(2^8)
// products per pair of shuffles.
TEXT ·mulAddVecAVX2(SB), NOSPLIT, $0-40
	MOVQ           low+0(FP), AX
	MOVQ           high+8(FP), BX
	MOVQ           src+16(FP), SI
	MOVQ           dst+24(FP), DI
	MOVQ           n+32(FP), CX
	VBROADCASTI128 (AX), Y0               // low-nibble products in both lanes
	VBROADCASTI128 (BX), Y1               // high-nibble products
	VBROADCASTI128 nibbleMask<>(SB), Y2
	CMPQ           CX, $64
	JL             add32

add64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y8
	VPSRLQ  $4, Y3, Y4
	VPSRLQ  $4, Y8, Y9
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y8, Y8
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y9, Y9
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y8, Y0, Y10
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y9, Y1, Y11
	VPXOR   Y5, Y6, Y5
	VPXOR   Y10, Y11, Y10
	VPXOR   (DI), Y5, Y5
	VPXOR   32(DI), Y10, Y10
	VMOVDQU Y5, (DI)
	VMOVDQU Y10, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JGE     add64

	TESTQ CX, CX
	JZ    adddone

add32:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y5, Y6, Y5
	VPXOR   (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     add32

adddone:
	VZEROUPPER
	RET

// func mulAssignVecAVX2(low, high *[16]byte, src, dst *byte, n int)
//
// dst[i] = c*src[i] for i in [0, n), n a positive multiple of 32.
TEXT ·mulAssignVecAVX2(SB), NOSPLIT, $0-40
	MOVQ           low+0(FP), AX
	MOVQ           high+8(FP), BX
	MOVQ           src+16(FP), SI
	MOVQ           dst+24(FP), DI
	MOVQ           n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

assign32:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y5, Y6, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     assign32

	VZEROUPPER
	RET
