package gf256

import (
	"bytes"
	"math/rand"
	"testing"
)

// mulSliceRef is the seed scalar kernel, kept as the reference the
// nibble-table kernels must match (and the baseline the benchmarks
// compare against).
func mulSliceRef(c byte, src, dst []byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	logC := logTable[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[logC+logTable[s]]
		}
	}
}

// TestNibbleTablesExhaustive checks all 256x256 products of the nibble
// decomposition against the scalar log/exp Mul.
func TestNibbleTablesExhaustive(t *testing.T) {
	for c := 0; c < Order; c++ {
		for x := 0; x < Order; x++ {
			want := Mul(byte(c), byte(x))
			got := mulTableLow[c][x&0x0f] ^ mulTableHigh[c][x>>4]
			if got != want {
				t.Fatalf("nibble tables: %d*%d = %d, want %d", c, x, got, want)
			}
		}
	}
}

func TestMulInvIdentity(t *testing.T) {
	for x := 1; x < Order; x++ {
		if got := Mul(byte(x), Inv(byte(x))); got != 1 {
			t.Fatalf("Mul(%d, Inv(%d)) = %d, want 1", x, x, got)
		}
	}
}

// TestMulSliceMatchesReference exercises the unrolled kernels, including
// odd tail lengths, against the scalar reference for every coefficient.
func TestMulSliceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1024, 4097} {
		src := make([]byte, size)
		base := make([]byte, size)
		rng.Read(src)
		rng.Read(base)
		for c := 0; c < Order; c++ {
			want := append([]byte(nil), base...)
			got := append([]byte(nil), base...)
			mulSliceRef(byte(c), src, want)
			MulSlice(byte(c), src, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice(c=%d, size=%d) diverges from reference", c, size)
			}

			wantA := make([]byte, size)
			gotA := append([]byte(nil), base...)
			copy(wantA, base)
			for i := range wantA {
				wantA[i] = Mul(byte(c), src[i])
			}
			MulSliceAssign(byte(c), src, gotA)
			if !bytes.Equal(gotA, wantA) {
				t.Fatalf("MulSliceAssign(c=%d, size=%d) diverges from reference", c, size)
			}
		}
	}
}

// TestMulSliceGenericPath re-runs the equivalence check with the assembly
// kernels disabled so the portable loops are covered on amd64 too.
func TestMulSliceGenericPath(t *testing.T) {
	saved := asmEnabled
	asmEnabled = false
	defer func() { asmEnabled = saved }()
	TestMulSliceMatchesReference(t)
}

func TestMulAccumulateRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{1, 8, 129, 4096, accBlockBytes + 13} {
		for _, k := range []int{1, 4, 8} {
			row := make([]byte, k)
			srcs := make([][]byte, k)
			for j := range srcs {
				row[j] = byte(rng.Intn(Order))
				srcs[j] = make([]byte, size)
				rng.Read(srcs[j])
			}
			row[0] = 0 // cover the skip path
			if k > 1 {
				row[1] = 1 // cover the XOR fast path
			}
			want := make([]byte, size)
			for j := range srcs {
				mulSliceRef(row[j], srcs[j], want)
			}
			got := make([]byte, size)
			MulAccumulateRows(row, srcs, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAccumulateRows(k=%d, size=%d) diverges from per-row reference", k, size)
			}
		}
	}
}

func TestMulAccumulateRowsPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("row/src mismatch", func() {
		MulAccumulateRows([]byte{1, 2}, [][]byte{make([]byte, 4)}, make([]byte, 4))
	})
	assertPanics("length mismatch", func() {
		MulAccumulateRows([]byte{1}, [][]byte{make([]byte, 3)}, make([]byte, 4))
	})
}

func benchmarkMulSlice(b *testing.B, kernel func(c byte, src, dst []byte), size int) {
	src := make([]byte, size)
	dst := make([]byte, size)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(0x9c, src, dst)
	}
}

func BenchmarkMulSlice(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
	}{
		{"4KiB", 4 << 10},
		{"64KiB", 64 << 10},
		{"1MiB", 1 << 20},
		{"4MiB", 4 << 20},
	} {
		b.Run(bc.name, func(b *testing.B) { benchmarkMulSlice(b, MulSlice, bc.size) })
	}
}

// BenchmarkMulSliceSeed measures the retired scalar kernel on the same
// workload, so one run shows the nibble-table speedup directly.
func BenchmarkMulSliceSeed(b *testing.B) {
	for _, bc := range []struct {
		name string
		size int
	}{
		{"1MiB", 1 << 20},
	} {
		b.Run(bc.name, func(b *testing.B) { benchmarkMulSlice(b, mulSliceRef, bc.size) })
	}
}

func BenchmarkMulAccumulateRows(b *testing.B) {
	const k, size = 6, 1 << 20
	row := make([]byte, k)
	srcs := make([][]byte, k)
	for j := range srcs {
		row[j] = byte(j*37 + 2)
		srcs[j] = make([]byte, size)
		for i := range srcs[j] {
			srcs[j][i] = byte(i + j)
		}
	}
	dst := make([]byte, size)
	b.SetBytes(int64(k * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAccumulateRows(row, srcs, dst)
	}
}
