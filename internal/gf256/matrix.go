package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       [][]byte
}

// ErrSingular is returned when attempting to invert a singular matrix.
var ErrSingular = errors.New("gf256: matrix is singular")

// NewMatrix allocates a zero matrix with the given dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	data := make([][]byte, rows)
	backing := make([]byte, rows*cols)
	for r := range data {
		data[r], backing = backing[:cols:cols], backing[cols:]
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i][i] = 1
	}
	return m
}

// Vandermonde returns a rows x cols Vandermonde matrix whose (r, c) entry is
// r^c. Any k rows of a Vandermonde matrix with distinct evaluation points are
// linearly independent, which is the property Reed-Solomon coding relies on.
func Vandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Data[r][c] = Exp(byte(r), c)
		}
	}
	return m
}

// Cauchy returns a rows x cols Cauchy matrix with entry 1/(x_r + y_c) where
// x_r = r + cols and y_c = c. Every square submatrix of a Cauchy matrix is
// invertible. rows+cols must not exceed the field order.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > Order {
		panic("gf256: cauchy matrix too large for field")
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Data[r][c] = Inv(Add(byte(r+cols), byte(c)))
		}
	}
	return m
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for r := range m.Data {
		copy(out.Data[r], m.Data[r])
	}
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[r][k]
			if a == 0 {
				continue
			}
			MulSlice(a, other.Data[k], out.Data[r])
		}
	}
	return out
}

// MulVec multiplies the matrix by a column vector of data slices: result[r]
// is the GF(2^8) linear combination sum_c m[r][c] * vecs[c], applied
// element-wise over byte slices of equal length.
func (m *Matrix) MulVec(vecs [][]byte) [][]byte {
	if len(vecs) != m.Cols {
		panic(fmt.Sprintf("gf256: vector count %d does not match columns %d", len(vecs), m.Cols))
	}
	size := len(vecs[0])
	out := make([][]byte, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = make([]byte, size)
		for c := 0; c < m.Cols; c++ {
			MulSlice(m.Data[r][c], vecs[c], out[r])
		}
	}
	return out
}

// SubMatrix extracts rows [r0, r1) and columns [c0, c1) as a new matrix.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Data[r-r0], m.Data[r][c0:c1])
	}
	return out
}

// SelectRows returns a new matrix consisting of the given rows, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Data[i], m.Data[r])
	}
	return out
}

// Augment returns the matrix [m | other] with other appended column-wise.
func (m *Matrix) Augment(other *Matrix) *Matrix {
	if m.Rows != other.Rows {
		panic("gf256: augment row mismatch")
	}
	out := NewMatrix(m.Rows, m.Cols+other.Cols)
	for r := 0; r < m.Rows; r++ {
		copy(out.Data[r][:m.Cols], m.Data[r])
		copy(out.Data[r][m.Cols:], other.Data[r])
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	m.Data[i], m.Data[j] = m.Data[j], m.Data[i]
}

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination, or ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("gf256: cannot invert %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	work := m.Augment(Identity(n))
	if err := work.gaussianElimination(); err != nil {
		return nil, err
	}
	return work.SubMatrix(0, n, n, 2*n), nil
}

// gaussianElimination reduces the left square block of the matrix to the
// identity, applying the same operations to the remaining columns.
func (m *Matrix) gaussianElimination() error {
	n := m.Rows
	for c := 0; c < n; c++ {
		// Find a pivot row.
		pivot := -1
		for r := c; r < n; r++ {
			if m.Data[r][c] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		if pivot != c {
			m.SwapRows(pivot, c)
		}
		// Scale the pivot row so the pivot becomes 1.
		if p := m.Data[c][c]; p != 1 {
			inv := Inv(p)
			MulSliceAssign(inv, m.Data[c], m.Data[c])
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == c || m.Data[r][c] == 0 {
				continue
			}
			MulSlice(m.Data[r][c], m.Data[c], m.Data[r])
			// MulSlice accumulates factor*pivotRow into row r; because the
			// pivot entry is 1, the leading coefficient cancels to zero.
		}
	}
	return nil
}

// IsIdentity reports whether the matrix is square and equal to the identity.
func (m *Matrix) IsIdentity() bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.Data[r][c] != want {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two matrices have identical dimensions and entries.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.Data[r][c] != other.Data[r][c] {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.Rows; r++ {
		s += fmt.Sprintln(m.Data[r])
	}
	return s
}
