package gf256

import "encoding/binary"

// Nibble-split multiply tables. For a fixed coefficient c the product c*x
// decomposes over the low and high nibble of x:
//
//	c*x = c*(x & 0x0f) ^ c*(x & 0xf0)
//	    = mulTableLow[c][x&0x0f] ^ mulTableHigh[c][x>>4]
//
// so a slice multiply becomes two 16-entry table lookups and an XOR per
// byte, with no branch and no log/exp indirection in the inner loop. The
// full table set is 256 coefficients x 32 bytes = 8 KiB and is built once
// at init, which keeps every kernel below allocation- and branch-free.
var (
	mulTableLow  [Order][16]byte
	mulTableHigh [Order][16]byte
)

// initMulTables fills the nibble tables; called from init after the
// log/exp tables exist.
func initMulTables() {
	for c := 0; c < Order; c++ {
		for n := 0; n < 16; n++ {
			mulTableLow[c][n] = Mul(byte(c), byte(n))
			mulTableHigh[c][n] = Mul(byte(c), byte(n<<4))
		}
	}
}

// xorSlice computes dst[i] ^= src[i] using 8-byte words for the bulk of the
// slice. binary.LittleEndian.Uint64 compiles to a single unaligned load on
// little-endian targets, so the main loop is one load/xor/store per word.
func xorSlice(src, dst []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(dst[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulAddSlice computes dst[i] ^= c*src[i]. On amd64 with AVX2 the bulk of
// the slice goes through a 32-bytes-per-iteration PSHUFB kernel driven by
// the same nibble tables; the unrolled generic kernel handles the tail and
// non-AVX2 targets. The caller guarantees equal lengths and c not in {0, 1}.
func mulAddSlice(c byte, src, dst []byte) {
	if asmEnabled {
		n := mulAddAsm(c, src, dst)
		if n == len(src) {
			return
		}
		src, dst = src[n:], dst[n:]
	}
	mulAddGeneric(c, src, dst)
}

// mulAddGeneric is the portable kernel: two nibble-table lookups and an
// XOR per byte, unrolled eight bytes per iteration.
func mulAddGeneric(c byte, src, dst []byte) {
	low := &mulTableLow[c]
	high := &mulTableHigh[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= low[s[0]&0x0f] ^ high[s[0]>>4]
		d[1] ^= low[s[1]&0x0f] ^ high[s[1]>>4]
		d[2] ^= low[s[2]&0x0f] ^ high[s[2]>>4]
		d[3] ^= low[s[3]&0x0f] ^ high[s[3]>>4]
		d[4] ^= low[s[4]&0x0f] ^ high[s[4]>>4]
		d[5] ^= low[s[5]&0x0f] ^ high[s[5]>>4]
		d[6] ^= low[s[6]&0x0f] ^ high[s[6]>>4]
		d[7] ^= low[s[7]&0x0f] ^ high[s[7]>>4]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= low[src[i]&0x0f] ^ high[src[i]>>4]
	}
}

// mulAssignSlice computes dst[i] = c*src[i], dispatching like mulAddSlice.
// The caller guarantees equal lengths and c not in {0, 1}.
func mulAssignSlice(c byte, src, dst []byte) {
	if asmEnabled {
		n := mulAssignAsm(c, src, dst)
		if n == len(src) {
			return
		}
		src, dst = src[n:], dst[n:]
	}
	mulAssignGeneric(c, src, dst)
}

func mulAssignGeneric(c byte, src, dst []byte) {
	low := &mulTableLow[c]
	high := &mulTableHigh[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = low[s[0]&0x0f] ^ high[s[0]>>4]
		d[1] = low[s[1]&0x0f] ^ high[s[1]>>4]
		d[2] = low[s[2]&0x0f] ^ high[s[2]>>4]
		d[3] = low[s[3]&0x0f] ^ high[s[3]>>4]
		d[4] = low[s[4]&0x0f] ^ high[s[4]>>4]
		d[5] = low[s[5]&0x0f] ^ high[s[5]>>4]
		d[6] = low[s[6]&0x0f] ^ high[s[6]>>4]
		d[7] = low[s[7]&0x0f] ^ high[s[7]>>4]
	}
	for i := n; i < len(src); i++ {
		dst[i] = low[src[i]&0x0f] ^ high[src[i]>>4]
	}
}

// accBlockBytes bounds how much of dst each MulAccumulateRows pass streams
// before moving to the next source row, so the dst block stays resident in
// L1 across all k accumulations instead of being re-fetched per row.
const accBlockBytes = 16 << 10

// MulAccumulateRows applies a whole generator row at once:
//
//	dst[i] ^= sum_j row[j] * srcs[j][i]
//
// It is the workhorse of Reed-Solomon encode/decode: one call per output
// chunk instead of len(row) MulSlice calls, with dst processed in
// L1-sized blocks so it is read and written from cache across all source
// rows. All srcs and dst must have equal length.
func MulAccumulateRows(row []byte, srcs [][]byte, dst []byte) {
	if len(row) != len(srcs) {
		panic("gf256: coefficient count does not match source count")
	}
	size := len(dst)
	for _, s := range srcs {
		if len(s) != size {
			panic("gf256: slice length mismatch in MulAccumulateRows")
		}
	}
	for off := 0; off < size; off += accBlockBytes {
		end := off + accBlockBytes
		if end > size {
			end = size
		}
		d := dst[off:end]
		for j, c := range row {
			switch c {
			case 0:
			case 1:
				xorSlice(srcs[j][off:end], d)
			default:
				mulAddSlice(c, srcs[j][off:end], d)
			}
		}
	}
}
