// Package gf256 implements arithmetic over the finite field GF(2^8) and
// small dense matrices over that field. It is the algebraic substrate used
// by the Reed-Solomon coder in internal/erasure.
//
// The field is constructed with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same polynomial used by most
// storage erasure-code implementations, with generator element 2.
package gf256

import "fmt"

// polynomial is the primitive polynomial used to build the field,
// represented without the leading x^8 term.
const polynomial = 0x1d

// Order is the number of elements in GF(2^8).
const Order = 256

var (
	expTable [2 * Order]byte // expTable[i] = generator^i, duplicated to avoid mod in Mul
	logTable [Order]int      // logTable[x] = i such that generator^i = x, undefined for 0
	invTable [Order]byte     // invTable[x] = multiplicative inverse of x, 0 for 0
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = byte(x)
		logTable[x] = i
		x <<= 1
		if x >= Order {
			x = (x ^ polynomial) & 0xff
		}
	}
	for i := Order - 1; i < 2*Order; i++ {
		expTable[i] = expTable[i-(Order-1)]
	}
	// g^(Order-1) = 1, so the inverse of x = g^log(x) is g^(Order-1-log(x)).
	for i := 1; i < Order; i++ {
		invTable[i] = expTable[(Order-1)-logTable[i]]
	}
	initMulTables()
}

// Add returns a + b in GF(2^8). Addition is XOR; it is its own inverse.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b in GF(2^8). Identical to Add because the field has
// characteristic 2.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[logTable[a]+logTable[b]]
}

// Div returns a / b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[logTable[a]-logTable[b]+Order-1]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTable[a]
}

// Exp returns a raised to the power n in GF(2^8). Exp(0, 0) is defined as 1.
func Exp(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (logTable[a] * n) % (Order - 1)
	if l < 0 {
		l += Order - 1
	}
	return expTable[l]
}

// Generator returns the primitive element used to construct the field.
func Generator() byte { return 2 }

// MulSlice computes dst[i] ^= c * src[i] for all i, i.e. it accumulates a
// scalar multiple of src into dst. Both slices must have equal length.
// The inner loop is branch-free: two nibble-table lookups and an XOR per
// byte (a pure word-wide XOR when c == 1).
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: slice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
	case 1:
		xorSlice(src, dst)
	default:
		mulAddSlice(c, src, dst)
	}
}

// MulSliceAssign computes dst[i] = c * src[i] for all i, overwriting dst.
func MulSliceAssign(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf256: slice length mismatch %d != %d", len(src), len(dst)))
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulAssignSlice(c, src, dst)
	}
}
