package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestFunctionalCachePutGet(t *testing.T) {
	c := NewFunctionalCache(3)
	if c.Capacity() != 3 {
		t.Fatalf("capacity = %d", c.Capacity())
	}
	k1 := ChunkKey{FileID: 1, ChunkIndex: 7}
	if !c.Put(k1, []byte("abc")) {
		t.Fatal("put failed on empty cache")
	}
	got, ok := c.Get(k1)
	if !ok || string(got) != "abc" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if _, ok := c.Get(ChunkKey{FileID: 2, ChunkIndex: 0}); ok {
		t.Fatal("unexpected hit")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestFunctionalCacheCapacityEnforced(t *testing.T) {
	c := NewFunctionalCache(2)
	ok1 := c.Put(ChunkKey{1, 0}, []byte("a"))
	ok2 := c.Put(ChunkKey{1, 1}, []byte("b"))
	ok3 := c.Put(ChunkKey{2, 0}, []byte("c"))
	if !ok1 || !ok2 {
		t.Fatal("first two puts should succeed")
	}
	if ok3 {
		t.Fatal("third put should be rejected at capacity")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	// Updating an existing key does not count against capacity.
	if !c.Put(ChunkKey{1, 0}, []byte("a2")) {
		t.Fatal("update of existing key should succeed")
	}
}

func TestFunctionalCacheNegativeCapacity(t *testing.T) {
	c := NewFunctionalCache(-5)
	if c.Capacity() != 0 {
		t.Fatalf("capacity = %d, want 0", c.Capacity())
	}
	if c.Put(ChunkKey{1, 0}, []byte("x")) {
		t.Fatal("put should fail with zero capacity")
	}
}

func TestFunctionalCachePerFileAccounting(t *testing.T) {
	c := NewFunctionalCache(10)
	for i := 0; i < 3; i++ {
		c.Put(ChunkKey{FileID: 5, ChunkIndex: i}, []byte{byte(i)})
	}
	c.Put(ChunkKey{FileID: 6, ChunkIndex: 0}, []byte("z"))
	if c.ChunksForFile(5) != 3 || c.ChunksForFile(6) != 1 || c.ChunksForFile(7) != 0 {
		t.Fatal("per-file accounting wrong")
	}
	alloc := c.Allocation()
	if alloc[5] != 3 || alloc[6] != 1 {
		t.Fatalf("allocation = %v", alloc)
	}
	file5 := c.GetFile(5)
	if len(file5) != 3 || string(file5[2]) != string([]byte{2}) {
		t.Fatalf("GetFile = %v", file5)
	}

	c.Delete(ChunkKey{FileID: 5, ChunkIndex: 1})
	if c.ChunksForFile(5) != 2 {
		t.Fatal("delete did not update per-file count")
	}
	removed := c.DeleteFile(5)
	if removed != 2 || c.ChunksForFile(5) != 0 || c.Len() != 1 {
		t.Fatalf("DeleteFile removed %d, len %d", removed, c.Len())
	}
}

func TestFunctionalCacheTrimFile(t *testing.T) {
	c := NewFunctionalCache(10)
	for i := 0; i < 4; i++ {
		c.Put(ChunkKey{FileID: 1, ChunkIndex: 10 + i}, []byte{byte(i)})
	}
	evicted := c.TrimFile(1, 2)
	if evicted != 2 {
		t.Fatalf("evicted %d, want 2", evicted)
	}
	if c.ChunksForFile(1) != 2 {
		t.Fatalf("remaining %d, want 2", c.ChunksForFile(1))
	}
	// The lowest chunk indices are retained.
	if _, ok := c.Get(ChunkKey{FileID: 1, ChunkIndex: 10}); !ok {
		t.Fatal("lowest chunk index should be retained")
	}
	if _, ok := c.Get(ChunkKey{FileID: 1, ChunkIndex: 13}); ok {
		t.Fatal("highest chunk index should be evicted")
	}
	// Trimming to a larger count is a no-op.
	if c.TrimFile(1, 5) != 0 {
		t.Fatal("trim to larger keep should evict nothing")
	}
	// Trim to zero removes the file entirely.
	if c.TrimFile(1, 0) != 2 || c.ChunksForFile(1) != 0 {
		t.Fatal("trim to zero should remove all chunks")
	}
	// Negative keep behaves like zero.
	c.Put(ChunkKey{FileID: 2, ChunkIndex: 0}, []byte("x"))
	if c.TrimFile(2, -3) != 1 {
		t.Fatal("negative keep should evict everything")
	}
}

func TestFunctionalCacheConcurrency(t *testing.T) {
	c := NewFunctionalCache(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := ChunkKey{FileID: g, ChunkIndex: i}
				c.Put(key, []byte{byte(i)})
				c.Get(key)
				c.ChunksForFile(g)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("len = %d, want 800", c.Len())
	}
}

func TestLRUBasic(t *testing.T) {
	c := NewLRU(10)
	if err := c.Put("a", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 10 || c.Len() != 2 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	v, ok := c.Get("a")
	if !ok || string(v) != "12345" {
		t.Fatal("get a failed")
	}
	// Inserting c (5 bytes) evicts the LRU entry, which is now "b".
	if err := c.Put("c", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if c.Contains("b") {
		t.Fatal("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("a and c should remain")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 0 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, evictions)
	}
}

func TestLRUTooLarge(t *testing.T) {
	c := NewLRU(4)
	if err := c.Put("big", []byte("12345")); err != ErrTooLarge {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", []byte("123"))
	c.Put("a", []byte("1234567"))
	if c.Used() != 7 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d", c.Used(), c.Len())
	}
	c.Remove("a")
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("remove did not clear entry")
	}
	c.Remove("missing") // must not panic
}

func TestLRUKeysOrder(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3"))
	c.Get("a") // a becomes most recent
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestLRUMissCounting(t *testing.T) {
	c := NewLRU(10)
	c.Get("nope")
	_, misses, _ := func() (uint64, uint64, uint64) { return c.Stats() }()
	if misses != 1 {
		t.Fatalf("misses = %d", misses)
	}
}

func TestLRUNeverExceedsCapacity(t *testing.T) {
	// Property: after any sequence of puts, used <= capacity.
	f := func(sizes []uint8) bool {
		c := NewLRU(64)
		for i, s := range sizes {
			val := make([]byte, int(s)%32)
			_ = c.Put(fmt.Sprintf("k%d", i%10), val)
			if c.Used() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUConcurrency(t *testing.T) {
	c := NewLRU(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-%d", g, i%20)
				_ = c.Put(key, make([]byte, 64))
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatal("capacity exceeded under concurrency")
	}
}

func TestChunkKeyString(t *testing.T) {
	k := ChunkKey{FileID: 3, ChunkIndex: 9}
	if k.String() != "file3/chunk9" {
		t.Fatalf("String = %q", k.String())
	}
}
