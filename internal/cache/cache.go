// Package cache provides the cache-side data structures of Sprout: a
// functional cache store holding coded chunks keyed by file and chunk index,
// an exact-copy cache, and a byte-capacity LRU cache used to emulate the
// Ceph cache-tier baseline. All caches are safe for concurrent use.
package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	ErrTooLarge = errors.New("cache: item larger than cache capacity")
	ErrNotFound = errors.New("cache: item not found")
)

// ChunkKey identifies one coded chunk of one file.
type ChunkKey struct {
	FileID     int
	ChunkIndex int // global index within the file's (n+k, k) code
}

func (k ChunkKey) String() string { return fmt.Sprintf("file%d/chunk%d", k.FileID, k.ChunkIndex) }

// FunctionalCache stores functional (coded) chunks per file according to a
// cache plan. Capacity is expressed in chunks, mirroring the optimizer's
// allocation unit; chunk payloads may be of different sizes across files.
//
// Chunks are indexed per file, so per-file lookups cost O(d_i) rather than a
// scan of the whole cache — the controller's read plane calls VisitFile on
// every request.
type FunctionalCache struct {
	mu       sync.RWMutex
	capacity int
	size     int
	byFile   map[int]map[int][]byte // fileID -> chunkIndex -> payload

	hits   uint64
	misses uint64
}

// NewFunctionalCache creates a functional cache holding at most capacity
// chunks. A capacity of zero disables caching.
func NewFunctionalCache(capacity int) *FunctionalCache {
	if capacity < 0 {
		capacity = 0
	}
	return &FunctionalCache{
		capacity: capacity,
		byFile:   make(map[int]map[int][]byte),
	}
}

// Capacity returns the configured capacity in chunks.
func (c *FunctionalCache) Capacity() int { return c.capacity }

// Len returns the number of chunks currently cached.
func (c *FunctionalCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// ChunksForFile returns how many chunks of the given file are cached.
func (c *FunctionalCache) ChunksForFile(fileID int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byFile[fileID])
}

// Put stores a coded chunk. It returns false without storing when the cache
// is full.
func (c *FunctionalCache) Put(key ChunkKey, data []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	file := c.byFile[key.FileID]
	if file != nil {
		if _, exists := file[key.ChunkIndex]; exists {
			file[key.ChunkIndex] = data
			return true
		}
	}
	if c.size >= c.capacity {
		return false
	}
	if file == nil {
		file = make(map[int][]byte)
		c.byFile[key.FileID] = file
	}
	file[key.ChunkIndex] = data
	c.size++
	return true
}

// Get retrieves a cached chunk.
func (c *FunctionalCache) Get(key ChunkKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.byFile[key.FileID][key.ChunkIndex]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return data, ok
}

// GetFile returns all cached chunks of a file, keyed by chunk index.
func (c *FunctionalCache) GetFile(fileID int) map[int][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	file := c.byFile[fileID]
	out := make(map[int][]byte, len(file))
	for idx, data := range file {
		out[idx] = data
	}
	return out
}

// VisitFile calls visit for every cached chunk of the file until visit
// returns false. The read lock is held for the duration of the visit;
// callbacks must be quick and must not call back into the cache.
func (c *FunctionalCache) VisitFile(fileID int, visit func(chunkIndex int, data []byte) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for idx, data := range c.byFile[fileID] {
		if !visit(idx, data) {
			return
		}
	}
}

// Delete removes a chunk if present.
func (c *FunctionalCache) Delete(key ChunkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	file := c.byFile[key.FileID]
	if _, ok := file[key.ChunkIndex]; ok {
		delete(file, key.ChunkIndex)
		c.size--
		if len(file) == 0 {
			delete(c.byFile, key.FileID)
		}
	}
}

// DeleteFile removes every cached chunk of the file and returns how many
// chunks were evicted.
func (c *FunctionalCache) DeleteFile(fileID int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := len(c.byFile[fileID])
	c.size -= removed
	delete(c.byFile, fileID)
	return removed
}

// TrimFile removes chunks of the file until at most keep remain, evicting
// the highest chunk indices first (the chunks generated last). It returns
// the number of evicted chunks.
func (c *FunctionalCache) TrimFile(fileID, keep int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	file := c.byFile[fileID]
	if len(file) <= keep {
		return 0
	}
	indices := make([]int, 0, len(file))
	for idx := range file {
		indices = append(indices, idx)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(indices)))
	toEvict := indices[:len(indices)-keep]
	for _, idx := range toEvict {
		delete(file, idx)
	}
	c.size -= len(toEvict)
	if len(file) == 0 {
		delete(c.byFile, fileID)
	}
	return len(toEvict)
}

// Stats returns cumulative hit and miss counts.
func (c *FunctionalCache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Allocation returns the number of cached chunks per file.
func (c *FunctionalCache) Allocation() map[int]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int]int, len(c.byFile))
	for fileID, file := range c.byFile {
		out[fileID] = len(file)
	}
	return out
}
