// Package cache provides the cache-side data structures of Sprout: a
// functional cache store holding coded chunks keyed by file and chunk index,
// an exact-copy cache, and a byte-capacity LRU cache used to emulate the
// Ceph cache-tier baseline. All caches are safe for concurrent use.
package cache

import (
	"errors"
	"fmt"
	"sync"
)

// Common errors.
var (
	ErrTooLarge = errors.New("cache: item larger than cache capacity")
	ErrNotFound = errors.New("cache: item not found")
)

// ChunkKey identifies one coded chunk of one file.
type ChunkKey struct {
	FileID     int
	ChunkIndex int // global index within the file's (n+k, k) code
}

func (k ChunkKey) String() string { return fmt.Sprintf("file%d/chunk%d", k.FileID, k.ChunkIndex) }

// FunctionalCache stores functional (coded) chunks per file according to a
// cache plan. Capacity is expressed in chunks, mirroring the optimizer's
// allocation unit; chunk payloads may be of different sizes across files.
type FunctionalCache struct {
	mu       sync.RWMutex
	capacity int
	chunks   map[ChunkKey][]byte
	perFile  map[int]int

	hits   uint64
	misses uint64
}

// NewFunctionalCache creates a functional cache holding at most capacity
// chunks. A capacity of zero disables caching.
func NewFunctionalCache(capacity int) *FunctionalCache {
	if capacity < 0 {
		capacity = 0
	}
	return &FunctionalCache{
		capacity: capacity,
		chunks:   make(map[ChunkKey][]byte),
		perFile:  make(map[int]int),
	}
}

// Capacity returns the configured capacity in chunks.
func (c *FunctionalCache) Capacity() int { return c.capacity }

// Len returns the number of chunks currently cached.
func (c *FunctionalCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.chunks)
}

// ChunksForFile returns how many chunks of the given file are cached.
func (c *FunctionalCache) ChunksForFile(fileID int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.perFile[fileID]
}

// Put stores a coded chunk. It returns false without storing when the cache
// is full.
func (c *FunctionalCache) Put(key ChunkKey, data []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.chunks[key]; exists {
		c.chunks[key] = data
		return true
	}
	if len(c.chunks) >= c.capacity {
		return false
	}
	c.chunks[key] = data
	c.perFile[key.FileID]++
	return true
}

// Get retrieves a cached chunk.
func (c *FunctionalCache) Get(key ChunkKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.chunks[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return data, ok
}

// GetFile returns all cached chunks of a file, keyed by chunk index.
func (c *FunctionalCache) GetFile(fileID int) map[int][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int][]byte)
	for k, v := range c.chunks {
		if k.FileID == fileID {
			out[k.ChunkIndex] = v
		}
	}
	return out
}

// Delete removes a chunk if present.
func (c *FunctionalCache) Delete(key ChunkKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.chunks[key]; ok {
		delete(c.chunks, key)
		c.perFile[key.FileID]--
		if c.perFile[key.FileID] == 0 {
			delete(c.perFile, key.FileID)
		}
	}
}

// DeleteFile removes every cached chunk of the file and returns how many
// chunks were evicted.
func (c *FunctionalCache) DeleteFile(fileID int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var removed int
	for k := range c.chunks {
		if k.FileID == fileID {
			delete(c.chunks, k)
			removed++
		}
	}
	delete(c.perFile, fileID)
	return removed
}

// TrimFile removes chunks of the file until at most keep remain, evicting
// the highest chunk indices first (the chunks generated last). It returns
// the number of evicted chunks.
func (c *FunctionalCache) TrimFile(fileID, keep int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	var indices []int
	for k := range c.chunks {
		if k.FileID == fileID {
			indices = append(indices, k.ChunkIndex)
		}
	}
	if len(indices) <= keep {
		return 0
	}
	// Evict the largest indices first.
	for i := 0; i < len(indices); i++ {
		for j := i + 1; j < len(indices); j++ {
			if indices[j] > indices[i] {
				indices[i], indices[j] = indices[j], indices[i]
			}
		}
	}
	toEvict := indices[:len(indices)-keep]
	for _, idx := range toEvict {
		delete(c.chunks, ChunkKey{FileID: fileID, ChunkIndex: idx})
	}
	c.perFile[fileID] = keep
	if keep == 0 {
		delete(c.perFile, fileID)
	}
	return len(toEvict)
}

// Stats returns cumulative hit and miss counts.
func (c *FunctionalCache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Allocation returns the number of cached chunks per file.
func (c *FunctionalCache) Allocation() map[int]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[int]int, len(c.perFile))
	for k, v := range c.perFile {
		out[k] = v
	}
	return out
}
