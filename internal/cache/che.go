package cache

import (
	"errors"
	"math"
)

// CheHitRatios estimates per-file steady-state LRU hit probabilities using
// Che's approximation: the characteristic time T solves
//
//	sum_i (1 - exp(-lambda_i * T)) = capacityObjects
//
// and the hit probability of file i is 1 - exp(-lambda_i * T). It is the
// standard analytical model of an LRU cache under independent Poisson
// arrivals and is used to evaluate the Ceph LRU cache-tier baseline without
// replaying a full trace.
func CheHitRatios(lambdas []float64, capacityObjects float64) ([]float64, error) {
	if capacityObjects < 0 {
		return nil, errors.New("cache: negative capacity")
	}
	n := len(lambdas)
	hits := make([]float64, n)
	if n == 0 {
		return hits, nil
	}
	active := 0
	for _, l := range lambdas {
		if l < 0 {
			return nil, errors.New("cache: negative arrival rate")
		}
		if l > 0 {
			active++
		}
	}
	if capacityObjects >= float64(active) {
		// Everything with a non-zero rate fits.
		for i, l := range lambdas {
			if l > 0 {
				hits[i] = 1
			}
		}
		return hits, nil
	}
	if capacityObjects == 0 || active == 0 {
		return hits, nil
	}
	occupancy := func(t float64) float64 {
		var s float64
		for _, l := range lambdas {
			if l > 0 {
				s += 1 - math.Exp(-l*t)
			}
		}
		return s
	}
	// Bisect on T: occupancy is increasing in T from 0 to the number of
	// active files.
	lo, hi := 0.0, 1.0
	for occupancy(hi) < capacityObjects && hi < 1e18 {
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-9*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < capacityObjects {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	for i, l := range lambdas {
		if l > 0 {
			hits[i] = 1 - math.Exp(-l*t)
		}
	}
	return hits, nil
}
