package cache

import (
	"math"
	"testing"
)

func TestCheHitRatiosEqualRates(t *testing.T) {
	lambdas := make([]float64, 100)
	for i := range lambdas {
		lambdas[i] = 0.01
	}
	hits, err := CheHitRatios(lambdas, 25)
	if err != nil {
		t.Fatal(err)
	}
	// With equal rates every file has the same hit ratio and the occupancy
	// constraint pins the sum to the capacity.
	var sum float64
	for i, h := range hits {
		if math.Abs(h-hits[0]) > 1e-9 {
			t.Fatalf("hit[%d]=%v differs from hit[0]=%v", i, h, hits[0])
		}
		sum += h
	}
	if math.Abs(sum-25) > 1e-3 {
		t.Fatalf("total occupancy %v, want 25", sum)
	}
}

func TestCheHitRatiosSkewedRates(t *testing.T) {
	lambdas := []float64{1.0, 0.1, 0.01, 0.001}
	hits, err := CheHitRatios(lambdas, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i] > hits[i-1]+1e-12 {
			t.Fatalf("hit ratios should be non-increasing in popularity rank: %v", hits)
		}
	}
	var sum float64
	for _, h := range hits {
		sum += h
	}
	if math.Abs(sum-2) > 1e-3 {
		t.Fatalf("occupancy %v, want 2", sum)
	}
}

func TestCheHitRatiosEdgeCases(t *testing.T) {
	// Capacity larger than the catalogue: everything hits.
	hits, err := CheHitRatios([]float64{1, 2, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0] != 1 || hits[1] != 1 || hits[2] != 0 {
		t.Fatalf("hits = %v", hits)
	}
	// Zero capacity: nothing hits.
	hits, err = CheHitRatios([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0] != 0 || hits[1] != 0 {
		t.Fatalf("hits = %v", hits)
	}
	// Empty catalogue.
	if hits, err := CheHitRatios(nil, 5); err != nil || len(hits) != 0 {
		t.Fatalf("empty catalogue: %v %v", hits, err)
	}
	// Invalid inputs.
	if _, err := CheHitRatios([]float64{-1}, 5); err == nil {
		t.Fatal("expected error for negative rate")
	}
	if _, err := CheHitRatios([]float64{1}, -5); err == nil {
		t.Fatal("expected error for negative capacity")
	}
}
