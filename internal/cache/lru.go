package cache

import (
	"container/list"
	"sync"
)

// LRU is a byte-capacity least-recently-used cache, the policy Ceph's cache
// tier uses and the baseline the paper compares against. Keys are arbitrary
// strings (the object-store substrate uses object names); values are byte
// slices whose length counts against the capacity.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key   string
	value []byte
}

// NewLRU creates an LRU cache with the given capacity in bytes.
func NewLRU(capacityBytes int64) *LRU {
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	return &LRU{
		capacity: capacityBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Capacity returns the configured capacity in bytes.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the number of bytes currently stored.
func (c *LRU) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Put inserts or updates an entry, evicting least-recently-used entries as
// needed. It returns ErrTooLarge if the value alone exceeds the capacity.
func (c *LRU) Put(key string, value []byte) error {
	size := int64(len(value))
	if size > c.capacity {
		return ErrTooLarge
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		entry := el.Value.(*lruEntry)
		c.used += size - int64(len(entry.value))
		entry.value = value
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruEntry{key: key, value: value})
		c.items[key] = el
		c.used += size
	}
	for c.used > c.capacity {
		c.evictOldestLocked()
	}
	return nil
}

// Get returns the cached value and marks it most recently used.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Contains reports whether the key is cached without updating recency.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Remove deletes an entry if present.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.removeElementLocked(el)
	}
}

// Stats returns cumulative hit, miss and eviction counts.
func (c *LRU) Stats() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Keys returns the cached keys from most to least recently used.
func (c *LRU) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*lruEntry).key)
	}
	return keys
}

func (c *LRU) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.evictions++
	c.removeElementLocked(el)
}

func (c *LRU) removeElementLocked(el *list.Element) {
	entry := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, entry.key)
	c.used -= int64(len(entry.value))
}
