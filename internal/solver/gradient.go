package solver

import "math"

// Objective evaluates a point; it may return +Inf for points outside the
// implicit domain (e.g. queueing-unstable configurations).
type Objective func(x []float64) float64

// Gradient fills grad with the gradient of the objective at x.
type Gradient func(x []float64, grad []float64)

// PGOptions configures ProjectedGradient.
type PGOptions struct {
	MaxIter      int     // maximum gradient iterations (default 200)
	InitialStep  float64 // initial step size (default 1)
	StepShrink   float64 // backtracking factor in (0,1) (default 0.5)
	MinStep      float64 // smallest step before giving up (default 1e-12)
	Tolerance    float64 // stop when the objective improves by less than this (default 1e-9)
	MaxBacktrack int     // maximum backtracking steps per iteration (default 40)
}

func (o PGOptions) withDefaults() PGOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.InitialStep <= 0 {
		o.InitialStep = 1
	}
	if o.StepShrink <= 0 || o.StepShrink >= 1 {
		o.StepShrink = 0.5
	}
	if o.MinStep <= 0 {
		o.MinStep = 1e-12
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	if o.MaxBacktrack <= 0 {
		o.MaxBacktrack = 40
	}
	return o
}

// PGResult reports the outcome of a projected-gradient run.
type PGResult struct {
	X          []float64
	Value      float64
	Iterations int
	Converged  bool
}

// ProjectedGradient minimises obj over the convex set defined by project
// using gradient steps with backtracking line search. x0 must be feasible
// (project is applied once up front to make sure) and have a finite
// objective value.
func ProjectedGradient(obj Objective, grad Gradient, project Projection, x0 []float64, opts PGOptions) PGResult {
	opts = opts.withDefaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	project(x)
	fx := obj(x)

	g := make([]float64, n)
	cand := make([]float64, n)
	step := opts.InitialStep

	result := PGResult{X: x, Value: fx}
	if math.IsInf(fx, 1) {
		// Infeasible start: nothing sensible to do.
		return result
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		result.Iterations = iter + 1
		grad(x, g)
		improved := false
		trial := step
		for bt := 0; bt < opts.MaxBacktrack; bt++ {
			for i := range x {
				cand[i] = x[i] - trial*g[i]
			}
			project(cand)
			fc := obj(cand)
			if fc < fx-1e-15 {
				copy(x, cand)
				fxPrev := fx
				fx = fc
				improved = true
				// Grow the step slightly for the next iteration if the first
				// trial succeeded, otherwise keep the reduced step.
				if bt == 0 {
					step = trial * 2
				} else {
					step = trial
				}
				if fxPrev-fx < opts.Tolerance {
					result.X, result.Value, result.Converged = x, fx, true
					return result
				}
				break
			}
			trial *= opts.StepShrink
			if trial < opts.MinStep {
				break
			}
		}
		if !improved {
			result.X, result.Value, result.Converged = x, fx, true
			return result
		}
	}
	result.X, result.Value = x, fx
	return result
}

// GoldenSection minimises a one-dimensional convex function on [lo, hi].
func GoldenSection(f func(float64) float64, lo, hi float64, iters int) (xMin, fMin float64) {
	const phi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	if fc < fd {
		return c, fc
	}
	return d, fd
}
