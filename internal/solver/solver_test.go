package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func TestProjectBox(t *testing.T) {
	x := []float64{-1, 0.5, 2}
	ProjectBox(x, 0, 1)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ProjectBox = %v", x)
		}
	}
}

func TestProjectCappedSimplexAlreadyFeasible(t *testing.T) {
	x := []float64{0.2, 0.3, 0.1}
	orig := append([]float64(nil), x...)
	if err := ProjectCappedSimplex(x, 0, 3); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-orig[i]) > 1e-12 {
			t.Fatalf("feasible point should be unchanged: %v", x)
		}
	}
}

func TestProjectCappedSimplexReducesSum(t *testing.T) {
	x := []float64{0.9, 0.9, 0.9, 0.9}
	if err := ProjectCappedSimplex(x, 0, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(x)-2) > 1e-6 {
		t.Fatalf("sum = %v, want 2", sum(x))
	}
	for _, v := range x {
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("coordinate out of box: %v", x)
		}
	}
}

func TestProjectCappedSimplexIncreasesSum(t *testing.T) {
	x := []float64{0.1, 0.0, 0.2}
	if err := ProjectCappedSimplex(x, 2, 3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(x)-2) > 1e-6 {
		t.Fatalf("sum = %v, want 2", sum(x))
	}
}

func TestProjectCappedSimplexInfeasible(t *testing.T) {
	x := []float64{0.5, 0.5}
	if err := ProjectCappedSimplex(x, 3, 4); err == nil {
		t.Fatal("expected infeasible error when L > len(x)")
	}
	if err := ProjectCappedSimplex(x, 2, 1); err == nil {
		t.Fatal("expected infeasible error when L > U")
	}
	if err := ProjectCappedSimplex(x, -1, -0.5); err == nil {
		t.Fatal("expected infeasible error when U < 0")
	}
}

func TestProjectCappedSimplexIsProjection(t *testing.T) {
	// Property: the projection is feasible and no feasible point sampled at
	// random is closer to the original point.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		l := rng.Float64() * float64(n) / 2
		u := l + rng.Float64()*float64(n)/2
		if u > float64(n) {
			u = float64(n)
		}
		proj := append([]float64(nil), x...)
		if err := ProjectCappedSimplex(proj, l, u); err != nil {
			return false
		}
		s := sum(proj)
		if s < l-1e-6 || s > u+1e-6 {
			return false
		}
		for _, v := range proj {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		distProj := dist2(x, proj)
		// Random feasible candidates must not beat the projection.
		for trial := 0; trial < 30; trial++ {
			cand := make([]float64, n)
			for i := range cand {
				cand[i] = rng.Float64()
			}
			// Rescale into the sum interval if possible.
			cs := sum(cand)
			if cs > u && cs > 0 {
				for i := range cand {
					cand[i] *= u / cs
				}
			}
			if sum(cand) < l {
				continue
			}
			if dist2(x, cand) < distProj-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

func TestProjectMinSum(t *testing.T) {
	x := []float64{0.1, 0.2, 0.3}
	ProjectMinSum(x, 0.3) // already satisfied
	if math.Abs(sum(x)-0.6) > 1e-12 {
		t.Fatalf("sum changed unnecessarily: %v", sum(x))
	}
	ProjectMinSum(x, 3)
	if math.Abs(sum(x)-3) > 1e-9 {
		t.Fatalf("sum = %v, want 3", sum(x))
	}
	ProjectMinSum(nil, 5) // must not panic
}

func TestDykstraIntersection(t *testing.T) {
	// Project onto the intersection of the unit box-sum set and a min-sum
	// half-space; the result must satisfy both constraints.
	x := []float64{2, 2, -1, 0.1}
	sets := []Projection{
		func(y []float64) { _ = ProjectCappedSimplex(y, 0, 3) },
		func(y []float64) { ProjectMinSum(y, 2) },
	}
	Dykstra(x, sets, 200, 1e-10)
	s := sum(x)
	if s < 2-1e-6 || s > 3+1e-6 {
		t.Fatalf("sum = %v outside [2,3]", s)
	}
	for _, v := range x {
		if v < -1e-6 || v > 1+1e-6 {
			t.Fatalf("coordinate outside box: %v", x)
		}
	}
}

func TestDykstraNoSets(t *testing.T) {
	x := []float64{1, 2}
	Dykstra(x, nil, 10, 1e-9)
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("Dykstra with no sets should be a no-op")
	}
}

func TestProjectedGradientQuadratic(t *testing.T) {
	// Minimise ||x - c||^2 over the box [0,1]^3: solution is clip(c).
	c := []float64{0.5, 2, -1}
	obj := func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - c[i]
			s += d * d
		}
		return s
	}
	grad := func(x []float64, g []float64) {
		for i := range x {
			g[i] = 2 * (x[i] - c[i])
		}
	}
	project := func(x []float64) { ProjectBox(x, 0, 1) }
	res := ProjectedGradient(obj, grad, project, []float64{0.1, 0.1, 0.1}, PGOptions{MaxIter: 500})
	want := []float64{0.5, 1, 0}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-4 {
			t.Fatalf("solution %v, want %v", res.X, want)
		}
	}
	if !res.Converged {
		t.Fatal("expected convergence")
	}
}

func TestProjectedGradientConstrainedQuadratic(t *testing.T) {
	// Minimise sum (x_i - 1)^2 subject to sum x_i <= 1, x in [0,1]^4.
	// Optimum puts 0.25 in every coordinate.
	obj := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += (v - 1) * (v - 1)
		}
		return s
	}
	grad := func(x []float64, g []float64) {
		for i := range x {
			g[i] = 2 * (x[i] - 1)
		}
	}
	project := func(x []float64) { _ = ProjectCappedSimplex(x, 0, 1) }
	res := ProjectedGradient(obj, grad, project, []float64{0, 0, 0, 0}, PGOptions{MaxIter: 1000})
	for _, v := range res.X {
		if math.Abs(v-0.25) > 1e-3 {
			t.Fatalf("solution %v, want 0.25 each", res.X)
		}
	}
}

func TestProjectedGradientInfeasibleStart(t *testing.T) {
	obj := func(x []float64) float64 { return math.Inf(1) }
	grad := func(x []float64, g []float64) {}
	project := func(x []float64) {}
	res := ProjectedGradient(obj, grad, project, []float64{0}, PGOptions{MaxIter: 5})
	if !math.IsInf(res.Value, 1) || res.Iterations != 0 {
		t.Fatalf("infeasible start should return immediately, got %+v", res)
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.5) * (x - 2.5) }
	x, fx := GoldenSection(f, 0, 10, 100)
	if math.Abs(x-2.5) > 1e-6 || fx > 1e-10 {
		t.Fatalf("golden section found x=%v f=%v", x, fx)
	}
}
