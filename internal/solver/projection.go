// Package solver provides the small convex-optimization toolkit the cache
// optimizer needs in place of the commercial solver (MOSEK) used in the
// paper: Euclidean projections onto the constraint sets of Prob Π, Dykstra's
// alternating-projection method for their intersection, and a projected
// gradient descent with backtracking line search.
package solver

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when a projection target set is empty.
var ErrInfeasible = errors.New("solver: infeasible constraint set")

// clip returns x limited to [lo, hi].
func clip(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ProjectBox projects x onto the box [lo, hi]^n in place.
func ProjectBox(x []float64, lo, hi float64) {
	for i := range x {
		x[i] = clip(x[i], lo, hi)
	}
}

// ProjectCappedSimplex projects x onto the set
//
//	{ y : 0 <= y_i <= 1,  L <= sum_i y_i <= U }
//
// in place. It returns ErrInfeasible if the set is empty (L > len(x) or
// U < 0 or L > U). The projection is computed by bisecting on the Lagrange
// multiplier theta of the sum constraint: y_i = clip(x_i - theta, 0, 1).
func ProjectCappedSimplex(x []float64, l, u float64) error {
	n := float64(len(x))
	if l > u || l > n || u < 0 {
		return ErrInfeasible
	}
	if l < 0 {
		l = 0
	}
	if u > n {
		u = n
	}
	sumAt := func(theta float64) float64 {
		var s float64
		for _, v := range x {
			s += clip(v-theta, 0, 1)
		}
		return s
	}
	s0 := sumAt(0)
	switch {
	case s0 >= l && s0 <= u:
		ProjectBox(x, 0, 1)
		return nil
	case s0 > u:
		// Need theta > 0 such that sumAt(theta) == u.
		theta := bisectDecreasing(sumAt, u, 0, maxAbs(x)+1)
		for i := range x {
			x[i] = clip(x[i]-theta, 0, 1)
		}
		return nil
	default:
		// s0 < l: need theta < 0 such that sumAt(theta) == l.
		theta := bisectDecreasing(sumAt, l, -(maxAbs(x) + 2), 0)
		for i := range x {
			x[i] = clip(x[i]-theta, 0, 1)
		}
		return nil
	}
}

// bisectDecreasing finds theta in [lo, hi] such that f(theta) == target,
// assuming f is non-increasing in theta.
func bisectDecreasing(f func(float64) float64, target, lo, hi float64) float64 {
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(hi)+math.Abs(lo)); iter++ {
		mid := (lo + hi) / 2
		if f(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// ProjectMinSum projects x onto the half-space { y : sum_i y_i >= minSum }
// in place (a uniform shift when the constraint is violated).
func ProjectMinSum(x []float64, minSum float64) {
	var s float64
	for _, v := range x {
		s += v
	}
	if s >= minSum || len(x) == 0 {
		return
	}
	shift := (minSum - s) / float64(len(x))
	for i := range x {
		x[i] += shift
	}
}

// Projection is a function that maps a point onto a convex set in place.
type Projection func(x []float64)

// Dykstra computes the Euclidean projection of x onto the intersection of
// the given convex sets using Dykstra's algorithm, modifying x in place.
// maxIter bounds the sweeps over all sets; tol is the stopping threshold on
// the change of x between sweeps.
func Dykstra(x []float64, sets []Projection, maxIter int, tol float64) {
	if len(sets) == 0 {
		return
	}
	n := len(x)
	// One correction term per set.
	corrections := make([][]float64, len(sets))
	for i := range corrections {
		corrections[i] = make([]float64, n)
	}
	prev := make([]float64, n)
	tmp := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		copy(prev, x)
		for s, project := range sets {
			// y = x + correction_s
			for i := range x {
				tmp[i] = x[i] + corrections[s][i]
			}
			copy(x, tmp)
			project(x)
			for i := range x {
				corrections[s][i] = tmp[i] - x[i]
			}
		}
		var delta float64
		for i := range x {
			d := x[i] - prev[i]
			delta += d * d
		}
		if math.Sqrt(delta) < tol {
			return
		}
	}
}
