// Package arena provides size-classed recycled byte buffers for the
// serving path: background-fill chunk copies, transport frame batches,
// and any other short-lived buffer whose lifetime has a clear owner.
//
// An Arena is a ladder of sync.Pools, one per power-of-two size class. A
// Lease hands out a *Buf whose backing array (and the Buf header itself)
// comes from the class pool, so steady-state lease/release cycles
// allocate nothing. Every lease increments an outstanding counter that
// Release decrements; tests assert the counter returns to zero on every
// path — including error and cancel paths — via CheckBalanced, which
// makes a leaked lease a test failure instead of silent GC pressure.
//
// Ownership protocol: the component that leases a buffer owns it until it
// either releases it or explicitly hands it to exactly one other owner.
// Slices derived from Buf.B must not outlive the release.
package arena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits is the smallest class (512 B): smaller leases are
	// rounded up — chunk payloads and frames below this are rare.
	minClassBits = 9
	// maxClassBits is the largest pooled class (4 MiB): bigger leases
	// fall through to plain allocations that are never pooled.
	maxClassBits = 22
	numClasses   = maxClassBits - minClassBits + 1
)

// Buf is one leased buffer. B is sized to the requested length; the
// backing array is the class size. The Buf header itself is pooled with
// its backing, so holding a *Buf (not a copy) is part of the protocol.
type Buf struct {
	// B is the leased buffer, len == the requested size. Callers may
	// reslice B freely — including rebasing it (b.B = b.B[k:]) — because
	// Release restores the full backing from the private copy below, not
	// from whatever B points at when the lease ends.
	B []byte

	// full is the original full-capacity slice over the class-sized
	// backing array; Release restores B from it so a rebased B cannot
	// permanently shrink the class slot.
	full []byte

	a   *Arena
	cls int32 // class index, -1 for an oversized one-shot allocation
}

// Release returns the buffer to its arena. Releasing twice corrupts the
// pool — the leak counter going negative is how tests catch it. Release
// on a nil Buf is a no-op so error paths can release unconditionally.
func (b *Buf) Release() {
	if b == nil || b.a == nil {
		return
	}
	a := b.a
	a.outstanding.Add(-1)
	if b.cls < 0 {
		b.a = nil // oversized: drop to the GC
		return
	}
	b.B = b.full
	a.classes[b.cls].Put(b)
}

// Arena is a set of size-classed buffer pools. The zero value is not
// usable; construct with New.
type Arena struct {
	name        string
	classes     [numClasses]sync.Pool
	hits        atomic.Int64
	misses      atomic.Int64
	outstanding atomic.Int64
}

// New returns an arena. The name labels it in metrics and leak reports.
func New(name string) *Arena {
	return &Arena{name: name}
}

// Name returns the arena's metrics label.
func (a *Arena) Name() string { return a.name }

// classFor maps a requested size to its class index, or -1 when the size
// exceeds the largest pooled class.
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	if n > 1<<maxClassBits {
		return -1
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Lease returns a buffer of length n. The fast path is a pool hit: no
// allocation, no zeroing (the caller overwrites what it uses — leased
// buffers carry stale bytes by design, like any recycled scratch).
func (a *Arena) Lease(n int) *Buf {
	a.outstanding.Add(1)
	cls := classFor(n)
	if cls < 0 {
		a.misses.Add(1)
		return &Buf{B: make([]byte, n), a: a, cls: -1}
	}
	if v := a.classes[cls].Get(); v != nil {
		a.hits.Add(1)
		b := v.(*Buf)
		b.B = b.full[:n]
		return b
	}
	a.misses.Add(1)
	mem := make([]byte, 1<<(cls+minClassBits))
	return &Buf{B: mem[:n], full: mem, a: a, cls: int32(cls)}
}

// Outstanding returns the number of leases not yet released.
func (a *Arena) Outstanding() int64 { return a.outstanding.Load() }

// Stats is a point-in-time snapshot of an arena's counters.
type Stats struct {
	Hits        int64 // leases served from a pool
	Misses      int64 // leases that allocated fresh backing
	Outstanding int64 // leases not yet released
}

// Stats returns the arena's counters.
func (a *Arena) Stats() Stats {
	return Stats{
		Hits:        a.hits.Load(),
		Misses:      a.misses.Load(),
		Outstanding: a.outstanding.Load(),
	}
}

// Counted is anything whose lease/release balance can be audited:
// arenas, and CountedPool wrappers around pre-existing sync.Pool uses.
type Counted interface {
	Name() string
	Outstanding() int64
}

// TB is the subset of *testing.T the leak checker needs; declared here so
// non-test packages can share the helper without importing testing.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckBalanced fails the test when any of the given pools still has
// outstanding leases (a leak) or has gone negative (a double release).
// Call it after the component under test has fully quiesced.
func CheckBalanced(tb TB, pools ...Counted) {
	tb.Helper()
	for _, p := range pools {
		if n := p.Outstanding(); n != 0 {
			tb.Errorf("arena %q: %d outstanding leases (positive = leak, negative = double release)", p.Name(), n)
		}
	}
}

// CountedPool wraps a sync.Pool with get/put accounting so existing pool
// uses (erasure scratch, controller read scratch) share the same leak
// discipline and metrics surface as the arenas.
type CountedPool struct {
	name string
	// New constructs a fresh element on a pool miss; must not be nil.
	New func() any

	p           sync.Pool
	hits        atomic.Int64
	misses      atomic.Int64
	outstanding atomic.Int64
}

// NewCountedPool returns a counted pool named for metrics and leak
// reports.
func NewCountedPool(name string, newFn func() any) *CountedPool {
	return &CountedPool{name: name, New: newFn}
}

// Name returns the pool's metrics label.
func (c *CountedPool) Name() string { return c.name }

// Get leases one element.
func (c *CountedPool) Get() any {
	c.outstanding.Add(1)
	if v := c.p.Get(); v != nil {
		c.hits.Add(1)
		return v
	}
	c.misses.Add(1)
	return c.New()
}

// Put returns an element.
func (c *CountedPool) Put(v any) {
	c.outstanding.Add(-1)
	c.p.Put(v)
}

// Forget balances the counter for an element that is deliberately not
// returned (for example scratch abandoned because a straggler fetch may
// still write into it). The element goes to the GC, not the pool.
func (c *CountedPool) Forget() {
	c.outstanding.Add(-1)
}

// Outstanding returns leases minus returns (and Forgets).
func (c *CountedPool) Outstanding() int64 { return c.outstanding.Load() }

// Stats returns the pool's counters.
func (c *CountedPool) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Outstanding: c.outstanding.Load(),
	}
}

// String implements fmt.Stringer for debug logs.
func (a *Arena) String() string {
	s := a.Stats()
	return fmt.Sprintf("arena[%s hits=%d misses=%d outstanding=%d]", a.name, s.Hits, s.Misses, s.Outstanding)
}
