package arena

import (
	"sync"
	"testing"

	"sprout/internal/racedetect"
)

func TestClassFor(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 0}, {512, 0}, {513, 1}, {1024, 1}, {1025, 2},
		{1 << 22, maxClassBits - minClassBits}, {1<<22 + 1, -1},
	} {
		if got := classFor(tc.n); got != tc.want {
			t.Errorf("classFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestLeaseReuse(t *testing.T) {
	a := New("test")
	b := a.Lease(1000)
	if len(b.B) != 1000 || cap(b.B) != 1024 {
		t.Fatalf("lease: len=%d cap=%d", len(b.B), cap(b.B))
	}
	b.B[0] = 0xAB
	b.Release()
	b2 := a.Lease(900)
	if len(b2.B) != 900 {
		t.Fatalf("release len=%d", len(b2.B))
	}
	// Under the race detector sync.Pool drops a random fraction of Puts,
	// so reuse identity and hit/miss counts only hold in non-race runs.
	if !racedetect.Enabled && b2 != b {
		t.Fatal("same-class lease did not reuse the released Buf")
	}
	b2.Release()
	st := a.Stats()
	if !racedetect.Enabled && (st.Hits != 1 || st.Misses != 1) {
		t.Fatalf("stats = %+v", st)
	}
	if st.Outstanding != 0 {
		t.Fatalf("outstanding = %d", st.Outstanding)
	}
}

// TestRebasedReleaseRecoversBacking leases a buffer, rebases B past its
// start (as the doc permits), and releases it: the next lease in the
// class must still see the full class-sized backing, not a slot
// permanently shrunk to the rebased tail.
func TestRebasedReleaseRecoversBacking(t *testing.T) {
	a := New("rebase")
	b := a.Lease(1024)
	b.B = b.B[1000:]
	b.Release()
	b2 := a.Lease(1024)
	// Under race, sync.Pool may have dropped the Put; the reuse assertion
	// only holds (and the regression only reproduces) in non-race runs.
	if !racedetect.Enabled && b2 != b {
		t.Fatal("same-class lease did not reuse the released Buf")
	}
	if len(b2.B) != 1024 || cap(b2.B) != 1024 {
		t.Fatalf("post-rebase lease: len=%d cap=%d, want 1024/1024", len(b2.B), cap(b2.B))
	}
	b2.Release()
	CheckBalanced(t, a)
}

func TestOversizedLease(t *testing.T) {
	a := New("test")
	b := a.Lease(1<<22 + 1)
	if len(b.B) != 1<<22+1 {
		t.Fatalf("oversized len=%d", len(b.B))
	}
	b.Release()
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d", got)
	}
	b.Release() // second release of a dropped oversized buf is a no-op
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding after no-op release = %d", got)
	}
}

func TestNilRelease(t *testing.T) {
	var b *Buf
	b.Release() // must not panic
}

func TestLeakDetection(t *testing.T) {
	a := New("leaky")
	a.Lease(64)
	rec := &recorder{}
	CheckBalanced(rec, a)
	if len(rec.errors) != 1 {
		t.Fatalf("leak not reported: %v", rec.errors)
	}
}

func TestConcurrentLeases(t *testing.T) {
	a := New("concurrent")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := a.Lease(100 + g*300)
				b.B[0] = byte(g)
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	CheckBalanced(t, a)
}

func TestCountedPool(t *testing.T) {
	news := 0
	p := NewCountedPool("scratch", func() any { news++; return new(int) })
	v := p.Get().(*int)
	p.Put(v)
	v2 := p.Get()
	p.Forget()
	_ = v2
	st := p.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("outstanding = %d", st.Outstanding)
	}
	// Hit/miss accounting depends on the Put surviving, which sync.Pool
	// does not guarantee under the race detector.
	if !racedetect.Enabled && news != 1 {
		t.Fatalf("New called %d times, want 1 (second Get must hit the pool)", news)
	}
	if !racedetect.Enabled && (st.Hits != 1 || st.Misses != 1) {
		t.Fatalf("stats = %+v", st)
	}
	CheckBalanced(t, p)
}

type recorder struct{ errors []string }

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}
