package objstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sprout/internal/erasure"
	"sprout/internal/queue"
)

func versionTestPool(t *testing.T, osds, n, k int) (*Cluster, *Pool) {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		NumOSDs:      osds,
		Services:     []queue.Dist{queue.Deterministic{Value: 0}},
		RefChunkSize: 1 << 10,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := c.CreatePool("ec", n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c, pool
}

func payloadFor(tag byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = tag ^ byte(i*7)
	}
	return p
}

func TestOverwriteVersionFlip(t *testing.T) {
	c, pool := versionTestPool(t, 10, 7, 4)
	ctx := context.Background()

	v1Payload := payloadFor(1, 8<<10)
	v1, err := pool.PutV(ctx, "obj", v1Payload)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pool.Version("obj"); got != v1 {
		t.Fatalf("version %d, want %d", got, v1)
	}
	got, err := pool.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, v1Payload) {
		t.Fatalf("get v1: err %v, match %v", err, bytes.Equal(got, v1Payload))
	}

	// Overwrite with a different size; reads must flip to the new stripe and
	// the old stripe's chunks must be deleted everywhere.
	v2Payload := payloadFor(2, 12<<10)
	v2, err := pool.PutV(ctx, "obj", v2Payload)
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("overwrite version %d not beyond %d", v2, v1)
	}
	got, err = pool.Get(ctx, "obj")
	if err != nil || !bytes.Equal(got, v2Payload) {
		t.Fatalf("get v2: err %v, match %v", err, bytes.Equal(got, v2Payload))
	}
	count := func() int {
		total := 0
		for _, o := range c.OSDs() {
			total += o.NumChunks()
		}
		return total
	}
	// The replaced stripe is parked for one commit (GC grace), then gone.
	if got := count(); got != 2*pool.N {
		t.Fatalf("%d chunks stored with one stripe parked, want %d", got, 2*pool.N)
	}
	if reaped := pool.ReapPrevious(); reaped != 1 {
		t.Fatalf("reaped %d stripes, want 1", reaped)
	}
	if got := count(); got != pool.N {
		t.Fatalf("%d chunks stored after reap, want %d (old stripe leaked)", got, pool.N)
	}
	if size, _ := pool.ObjectSize("obj"); size != len(v2Payload) {
		t.Fatalf("size %d, want %d", size, len(v2Payload))
	}
}

func TestStagedPutInvisibleUntilCommit(t *testing.T) {
	c, pool := versionTestPool(t, 10, 5, 3)
	ctx := context.Background()

	old := payloadFor(9, 6<<10)
	if err := pool.Put(ctx, "obj", old); err != nil {
		t.Fatal(err)
	}
	oldVersion, _ := pool.Version("obj")

	// Stage a full new stripe but do not commit: readers must keep seeing
	// the old payload, chunk by chunk and whole-object.
	next := payloadFor(8, 6<<10)
	dataChunks, err := pool.Code().Split(next)
	if err != nil {
		t.Fatal(err)
	}
	storage, err := pool.Code().Encode(dataChunks)
	if err != nil {
		t.Fatal(err)
	}
	version, err := pool.BeginPut("obj")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pool.N; i++ {
		if err := pool.StageChunk(ctx, "obj", version, i, storage[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := pool.Get(ctx, "obj"); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("staged put visible before commit: err %v", err)
	}
	if v, _ := pool.Version("obj"); v != oldVersion {
		t.Fatalf("version moved to %d before commit", v)
	}

	// Commit flips atomically.
	if err := pool.CommitObject("obj", version, len(next)); err != nil {
		t.Fatal(err)
	}
	if got, err := pool.Get(ctx, "obj"); err != nil || !bytes.Equal(got, next) {
		t.Fatalf("committed put not visible: err %v", err)
	}
	// Replayed commit is a no-op.
	if err := pool.CommitObject("obj", version, len(next)); err != nil {
		t.Fatalf("replayed commit: %v", err)
	}
	pool.ReapPrevious()
	total := 0
	for _, o := range c.OSDs() {
		total += o.NumChunks()
	}
	if total != pool.N {
		t.Fatalf("%d chunks stored, want %d", total, pool.N)
	}
}

func TestAbortPutLeavesNoTrace(t *testing.T) {
	c, pool := versionTestPool(t, 10, 5, 3)
	ctx := context.Background()

	old := payloadFor(3, 4<<10)
	if err := pool.Put(ctx, "obj", old); err != nil {
		t.Fatal(err)
	}
	version, err := pool.BeginPut("obj")
	if err != nil {
		t.Fatal(err)
	}
	chunk := payloadFor(4, 2<<10)
	for i := 0; i < 3; i++ { // partial stripe
		if err := pool.StageChunk(ctx, "obj", version, i, chunk); err != nil {
			t.Fatal(err)
		}
	}
	// Committing an incomplete stripe must fail.
	if err := pool.CommitObject("obj", version, 6<<10); !errors.Is(err, ErrStagedStripe) {
		t.Fatalf("commit of partial stripe: %v", err)
	}
	if err := pool.AbortPut("obj", version); err != nil {
		t.Fatal(err)
	}
	if staged := pool.StagedPuts(); staged != 0 {
		t.Fatalf("%d staged puts after abort", staged)
	}
	total := 0
	for _, o := range c.OSDs() {
		total += o.NumChunks()
	}
	if total != pool.N {
		t.Fatalf("%d chunks stored after abort, want %d (staged chunks leaked)", total, pool.N)
	}
	if got, err := pool.Get(ctx, "obj"); err != nil || !bytes.Equal(got, old) {
		t.Fatalf("old payload damaged by aborted put: err %v", err)
	}
	// Staging into an aborted put must fail.
	if err := pool.StageChunk(ctx, "obj", version, 0, chunk); !errors.Is(err, ErrNoStagedPut) {
		t.Fatalf("stage after abort: %v", err)
	}
	// Stale-staged GC aborts abandoned puts.
	if _, err := pool.BeginPut("zombie"); err != nil {
		t.Fatal(err)
	}
	if aborted := pool.AbortStaleStaged(0); aborted != 1 {
		t.Fatalf("AbortStaleStaged removed %d puts, want 1", aborted)
	}
}

// TestOverrideLifetimeAcrossOverwrites: placement overrides (chunks staged
// away from a Down CRUSH home) must stay resolvable while their stripe can
// still be read — a reader pinned to the old stripe resolves re-placed
// chunks until the chunks themselves are reaped — and must not leak in the
// override map afterwards.
func TestOverrideLifetimeAcrossOverwrites(t *testing.T) {
	c, pool := versionTestPool(t, 10, 7, 4)
	ctx := context.Background()

	countOverrides := func() int {
		pool.mu.RLock()
		defer pool.mu.RUnlock()
		return len(pool.overrides)
	}

	// Find an object whose CRUSH placement uses a specific OSD, then fail
	// that OSD so writes must re-place a chunk (creating an override).
	osd, err := c.OSD(4)
	if err != nil {
		t.Fatal(err)
	}
	osd.Fail(false)
	if err := pool.Put(ctx, "obj", payloadFor(1, 8<<10)); err != nil {
		t.Fatal(err)
	}
	overridesV1 := countOverrides()

	// Overwrite while the OSD is still down: the old stripe is parked, and
	// its overrides must survive until the stripe is reaped.
	if err := pool.Put(ctx, "obj", payloadFor(2, 8<<10)); err != nil {
		t.Fatal(err)
	}
	if got := countOverrides(); got < overridesV1 {
		t.Fatalf("overrides dropped at commit (%d -> %d) while the parked stripe is still readable", overridesV1, got)
	}
	if reaped := pool.ReapPrevious(); reaped != 1 {
		t.Fatalf("reaped %d stripes, want 1", reaped)
	}
	// Only the current stripe's overrides remain; the parked stripe's were
	// cleaned up with its chunks.
	if got := countOverrides(); overridesV1 > 0 && got != overridesV1 {
		t.Fatalf("%d override entries after reap, want %d (old-stripe overrides leaked)", got, overridesV1)
	}
	if got, err := pool.Get(ctx, "obj"); err != nil || !bytes.Equal(got, payloadFor(2, 8<<10)) {
		t.Fatalf("read after override-heavy overwrite: err %v", err)
	}
}

// TestConcurrentOverwriteAndGet hammers one object with overwrites while
// readers decode it: every successful Get must equal the payload of one
// committed put — never a failed put's bytes and never a mix of two
// versions.
func TestConcurrentOverwriteAndGet(t *testing.T) {
	_, pool := versionTestPool(t, 10, 7, 4)
	ctx := context.Background()

	const size = 8 << 10
	if err := pool.Put(ctx, "hot", payloadFor(0, size)); err != nil {
		t.Fatal(err)
	}
	// committed[tag] reports whether payloadFor(tag) was (or is being)
	// committed; a Get may legally observe a put that commits during the
	// read, so the tag is registered before the put starts.
	var mu sync.Mutex
	committed := map[byte]bool{0: true}

	const writers, writesEach, readers, readsEach = 3, 12, 4, 40
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesEach; i++ {
				tag := byte(1 + w*writesEach + i)
				mu.Lock()
				committed[tag] = true
				mu.Unlock()
				if _, err := pool.PutV(ctx, "hot", payloadFor(tag, size)); err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < readsEach; i++ {
				got, err := pool.Get(ctx, "hot")
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if len(got) != size {
					errCh <- fmt.Errorf("reader %d: %d bytes, want %d", r, len(got), size)
					return
				}
				tag := got[0] // payloadFor(tag)[0] == tag
				mu.Lock()
				ok := committed[tag]
				mu.Unlock()
				if !ok || !bytes.Equal(got, payloadFor(tag, size)) {
					errCh <- fmt.Errorf("reader %d: bytes match no committed put (tag %d, known %v)", r, tag, ok)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestPutGetLinearizableRandom is the pool-level linearizability property
// test: for random (n, k), object sizes, and interleaved
// Put/Get/Fail/Recover/Repair sequences, every successful Get returns
// exactly the payload of the last committed Put of that object.
func TestPutGetLinearizableRandom(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		k := 2 + rng.Intn(3)        // 2..4
		n := k + 1 + rng.Intn(3)    // k+1..k+3
		osds := n + 2 + rng.Intn(3) // headroom for failures
		c, err := NewCluster(ClusterConfig{
			NumOSDs:      osds,
			Services:     []queue.Dist{queue.Deterministic{Value: 0}},
			RefChunkSize: 1 << 10,
			Seed:         int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := c.CreatePool("ec", n, k)
		if err != nil {
			t.Fatal(err)
		}

		model := make(map[string][]byte) // last committed payload per object
		down := make(map[int]bool)
		objName := func(i int) string { return fmt.Sprintf("o%d", i) }
		const objects = 4

		repairAll := func() {
			// Inline repair: regenerate every missing chunk from survivors
			// (the repair manager's core loop, without its goroutines).
			for _, deg := range pool.DegradedObjects() {
				locs, err := pool.ChunkLocations(deg.Object)
				if err != nil {
					continue
				}
				var chunks []erasure.Chunk
				for _, loc := range locs {
					if loc.Alive && loc.Present {
						if data, err := pool.GetChunk(ctx, deg.Object, loc.Chunk); err == nil {
							chunks = append(chunks, erasure.Chunk{Index: loc.Chunk, Data: data})
						}
					}
				}
				if len(chunks) < k {
					continue // not enough survivors; deferred
				}
				dataChunks, err := pool.Code().Reconstruct(chunks)
				if err != nil {
					t.Fatalf("trial %d: reconstruct %s: %v", trial, deg.Object, err)
				}
				for _, missing := range deg.Missing {
					payload, err := pool.Code().ChunkAt(missing, dataChunks)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := pool.PlaceChunk(ctx, deg.Object, missing, payload); err != nil {
						t.Fatalf("trial %d: place %s/%d: %v", trial, deg.Object, missing, err)
					}
				}
			}
		}

		for op := 0; op < 60; op++ {
			obj := objName(rng.Intn(objects))
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // Put
				payload := payloadFor(byte(rng.Intn(256)), 512+rng.Intn(4096))
				err := pool.Put(ctx, obj, payload)
				if err == nil {
					model[obj] = payload
				} else if len(down) == 0 {
					t.Fatalf("trial %d op %d: put with all OSDs up: %v", trial, op, err)
				}
				// A failed put must leave the previous committed value intact;
				// the next Get case verifies that through the model.
			case 4, 5, 6, 7: // Get
				want, exists := model[obj]
				got, err := pool.Get(ctx, obj)
				if !exists {
					if !errors.Is(err, ErrObjectNotFound) {
						t.Fatalf("trial %d op %d: get of unwritten %s: %v", trial, op, obj, err)
					}
					continue
				}
				if err != nil {
					// Only acceptable when fewer than k chunks are readable.
					if locs, lerr := pool.ChunkLocations(obj); lerr == nil {
						readable := 0
						for _, loc := range locs {
							if loc.Alive && loc.Present {
								readable++
							}
						}
						if readable >= k {
							t.Fatalf("trial %d op %d: get %s failed with %d readable chunks: %v", trial, op, obj, readable, err)
						}
					}
					continue
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trial %d op %d: get %s returned stale or mixed bytes", trial, op, obj)
				}
			case 8: // Fail an OSD (sometimes losing chunks)
				id := rng.Intn(osds)
				if len(down) < n-k { // keep at least k chunks decodable
					lose := rng.Intn(2) == 0
					if osd, err := c.OSD(id); err == nil && osd.Alive() {
						osd.Fail(lose)
						down[id] = true
					}
				}
			case 9: // Recover + repair
				for id := range down {
					if osd, err := c.OSD(id); err == nil {
						osd.Recover()
					}
					delete(down, id)
				}
				repairAll()
			}
		}
	}
}
