package objstore

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// The ingest plane: striped writes commit through two phases. BeginPut
// allocates a fresh stripe version, StageChunk writes individual coded
// chunks under that version's keys (invisible to readers, because no
// committed object metadata points at them), and CommitObject atomically
// flips the object's metadata to the staged version — after which the old
// stripe's chunks are deleted. AbortPut deletes the staged chunks, so a
// failed or abandoned put leaves the previously committed stripe fully
// intact. Clients that encode locally (the SIMD coder) drive these three
// operations directly over the transport; Pool.Put is the same machinery
// run server-side.

// stagedKey identifies one in-flight two-phase put.
type stagedKey struct {
	object  string
	version uint64
}

// prevStripe is a superseded stripe awaiting deferred garbage collection:
// the chunk keys and the OSDs that held them, resolved (through any repair
// overrides) at the moment the stripe was replaced.
type prevStripe struct {
	version uint64
	keys    []string
	targets []*OSD
}

// stagedPut tracks the chunks of one uncommitted stripe: which OSD holds
// each staged chunk (CRUSH position, or a live alternate when the CRUSH home
// is Down) so commit can install overrides and abort can clean up.
type stagedPut struct {
	pg        int
	started   time.Time
	chunkSize int          // payload size of the first staged chunk; all must match
	targets   map[int]*OSD // chunk index -> OSD holding the staged payload
}

// pinMeta atomically reads the object's committed metadata and pins its
// stripe version against garbage collection: the stripe stays readable until
// the matching unpin, no matter how many overwrites commit meanwhile.
func (p *Pool) pinMeta(object string) (objectMeta, bool) {
	p.mu.Lock()
	meta, ok := p.objects[object]
	if ok {
		p.pins[stagedKey{object, meta.version}]++
	}
	p.mu.Unlock()
	return meta, ok
}

// unpin releases a read pin; the last unpin of a zombie stripe (superseded
// while pinned) deletes its chunks.
func (p *Pool) unpin(object string, version uint64) {
	key := stagedKey{object, version}
	p.mu.Lock()
	p.pins[key]--
	var zombie prevStripe
	haveZombie := false
	if p.pins[key] <= 0 {
		delete(p.pins, key)
		if z, ok := p.zombies[key]; ok {
			zombie, haveZombie = z, true
			delete(p.zombies, key)
		}
	}
	p.mu.Unlock()
	if haveZombie {
		p.deleteStripe(zombie)
	}
}

// deleteStripe removes a dead stripe's chunks and its placement overrides
// (kept alive until now so pinned readers could resolve re-placed chunks).
// Must be called without p.mu held.
func (p *Pool) deleteStripe(ps prevStripe) {
	p.mu.Lock()
	for _, k := range ps.keys {
		delete(p.overrides, k)
	}
	p.mu.Unlock()
	for i := range ps.keys {
		_ = ps.targets[i].DeleteChunk(ps.keys[i])
	}
}

// reapOrZombie deletes a parked stripe's chunks unless readers still pin
// its version, in which case the stripe is parked as a zombie that the last
// unpin deletes. Must be called without p.mu held. Pinning a parked stripe
// anew is impossible — it left the committed metadata at least one commit
// ago — so the pin check cannot race a fresh reader.
func (p *Pool) reapOrZombie(object string, ps prevStripe) {
	key := stagedKey{object, ps.version}
	p.mu.Lock()
	if p.pins[key] > 0 {
		p.zombies[key] = ps
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.deleteStripe(ps)
}

// BeginPut opens a two-phase put of an object and returns the stripe version
// the chunks must be staged under. The version is unique across the pool and
// the staged stripe stays invisible to readers until CommitObject.
func (p *Pool) BeginPut(object string) (uint64, error) {
	if object == "" {
		return 0, fmt.Errorf("%w: empty object name", ErrBadPoolParams)
	}
	version := p.verSeq.Add(1)
	p.mu.Lock()
	p.staged[stagedKey{object, version}] = &stagedPut{
		pg:      p.placementGroup(object),
		started: time.Now(),
		targets: make(map[int]*OSD, p.N),
	}
	p.mu.Unlock()
	return version, nil
}

// stageTarget picks the OSD to hold one staged chunk, under p.mu: the CRUSH
// position when it is alive, otherwise the least-loaded live OSD that hosts
// no other chunk of this stripe (so per-object placement keeps one chunk per
// node even for writes issued during an outage).
func (p *Pool) stageTarget(s *stagedPut, chunk int) (*OSD, error) {
	primary := p.pgOSDs[s.pg][chunk]
	if primary.Alive() {
		return primary, nil
	}
	used := make(map[int]bool, p.N)
	for c := 0; c < p.N; c++ {
		if c == chunk {
			continue
		}
		if osd, ok := s.targets[c]; ok {
			used[osd.ID] = true
		} else {
			used[p.pgOSDs[s.pg][c].ID] = true
		}
	}
	var target *OSD
	for _, osd := range p.osds {
		if osd.Alive() && !used[osd.ID] {
			if target == nil || osd.NumChunks() < target.NumChunks() {
				target = osd
			}
		}
	}
	if target == nil {
		return nil, fmt.Errorf("%w: staging chunk %d", ErrNoRepairTarget, chunk)
	}
	return target, nil
}

// StageChunk writes one coded chunk of a staged put to its target OSD. The
// put must have been opened with BeginPut; all chunks of a stripe must carry
// equally sized payloads. Re-staging the same chunk (a client retry)
// overwrites the previous payload.
func (p *Pool) StageChunk(ctx context.Context, object string, version uint64, chunk int, data []byte) error {
	if chunk < 0 || chunk >= p.N {
		return fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
	}
	if len(data) == 0 {
		return fmt.Errorf("%w: empty chunk payload", ErrStagedStripe)
	}
	key := stagedKey{object, version}
	p.mu.Lock()
	s, ok := p.staged[key]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s v%d", ErrNoStagedPut, object, version)
	}
	if s.chunkSize == 0 {
		s.chunkSize = len(data)
	} else if s.chunkSize != len(data) {
		p.mu.Unlock()
		return fmt.Errorf("%w: chunk %d is %d bytes, stripe uses %d", ErrStagedStripe, chunk, len(data), s.chunkSize)
	}
	target, ok := s.targets[chunk]
	if !ok {
		var err error
		if target, err = p.stageTarget(s, chunk); err != nil {
			p.mu.Unlock()
			return err
		}
		s.targets[chunk] = target
	}
	p.mu.Unlock()

	chunkKey := p.chunkKey(object, version, chunk)
	if err := target.PutChunk(ctx, chunkKey, data); err != nil {
		p.mu.Lock()
		if s, ok := p.staged[key]; ok && s.targets[chunk] == target {
			delete(s.targets, chunk)
		}
		p.mu.Unlock()
		return err
	}
	// The put may have been aborted (client abort, stale-staging janitor)
	// while the chunk write was in flight; the abort's cleanup ran before
	// our chunk landed, so the orphan must be deleted here or it would leak
	// forever. If the session is gone because it committed (a client racing
	// its own commit), the chunk belongs to the live stripe and stays.
	p.mu.Lock()
	_, stillOpen := p.staged[key]
	committed := false
	if meta, ok := p.objects[object]; ok && meta.version == version {
		committed = true
	}
	p.mu.Unlock()
	if !stillOpen && !committed {
		_ = target.DeleteChunk(chunkKey)
		return fmt.Errorf("%w: %s v%d", ErrNoStagedPut, object, version)
	}
	return nil
}

// CommitObject makes a staged put visible: it verifies the stripe is
// complete, installs placement overrides for chunks staged away from their
// CRUSH home, and atomically flips the object metadata to the new version —
// readers arriving after CommitObject returns decode the new stripe, readers
// still pinned to the old version retry once its chunks are deleted.
// Committing an already-committed version again is a no-op (client replays
// after a lost response are safe).
func (p *Pool) CommitObject(object string, version uint64, size int) error {
	key := stagedKey{object, version}
	p.mu.Lock()
	s, ok := p.staged[key]
	if !ok {
		if meta, exists := p.objects[object]; exists && meta.version == version {
			p.mu.Unlock()
			return nil // replayed commit
		}
		p.mu.Unlock()
		return fmt.Errorf("%w: %s v%d", ErrNoStagedPut, object, version)
	}
	if len(s.targets) != p.N {
		p.mu.Unlock()
		return fmt.Errorf("%w: staged %d of %d chunks for %s v%d", ErrStagedStripe, len(s.targets), p.N, object, version)
	}
	if size <= 0 || (size+p.K-1)/p.K != s.chunkSize {
		p.mu.Unlock()
		return fmt.Errorf("%w: object size %d does not match %d-byte chunks", ErrStagedStripe, size, s.chunkSize)
	}
	if old, hadOld := p.objects[object]; hadOld && version < old.version {
		// Superseded: a put that began earlier is committing after a newer
		// stripe already became visible. Version order is the commit order
		// (metadata never moves backwards), so the put is accepted as
		// immediately-overwritten and its staged chunks are discarded.
		targets := s.targets
		delete(p.staged, stagedKey{object, version})
		p.mu.Unlock()
		for c, osd := range targets {
			_ = osd.DeleteChunk(p.chunkKey(object, version, c))
		}
		return nil
	}
	for c, osd := range s.targets {
		if osd != p.pgOSDs[s.pg][c] {
			p.overrides[p.chunkKey(object, version, c)] = osd
		}
	}
	// Deferred GC: the stripe parked by the previous overwrite dies now;
	// the stripe this commit replaces is parked until the next one. Readers
	// pinned at most one version behind the flip therefore always find
	// their chunks.
	reap, hasReap := p.prev[object]
	old, hadOld := p.objects[object]
	if hadOld {
		parked := prevStripe{
			version: old.version,
			keys:    make([]string, 0, p.N),
			targets: make([]*OSD, 0, p.N),
		}
		for c := 0; c < p.N; c++ {
			k := p.chunkKey(object, old.version, c)
			osd := p.pgOSDs[old.pg][c]
			if o, ok := p.overrides[k]; ok {
				// Keep the override alive: readers still pinned to the old
				// stripe must resolve re-placed chunks until the chunks are
				// actually deleted (reapOrZombie cleans the entries up).
				osd = o
			}
			parked.keys = append(parked.keys, k)
			parked.targets = append(parked.targets, osd)
		}
		p.prev[object] = parked
	}
	p.objects[object] = objectMeta{size: size, pg: s.pg, version: version}
	delete(p.staged, key)
	hooks := p.commitHooks
	p.mu.Unlock()

	// Deletion is best effort (a Down OSD keeps its obsolete chunks until it
	// is wiped or recovered) and respects read pins: a stripe still being
	// decoded becomes a zombie deleted by its last reader.
	if hasReap {
		p.reapOrZombie(object, reap)
	}
	for _, hook := range hooks {
		hook(object)
	}
	return nil
}

// ReapPrevious immediately deletes every stripe parked for deferred garbage
// collection and returns how many stripes were reaped. Used by tests and by
// quiesce points that want exact chunk accounting; steady-state overwrites
// reap automatically one commit later.
func (p *Pool) ReapPrevious() int {
	p.mu.Lock()
	parked := make([]prevStripe, 0, len(p.prev))
	objects := make([]string, 0, len(p.prev))
	for object, ps := range p.prev {
		parked = append(parked, ps)
		objects = append(objects, object)
		delete(p.prev, object)
	}
	p.mu.Unlock()
	for i, ps := range parked {
		p.reapOrZombie(objects[i], ps)
	}
	return len(parked)
}

// AbortPut discards a staged put, deleting any chunks it staged. Aborting an
// unknown (already committed or already aborted) put is a no-op.
func (p *Pool) AbortPut(object string, version uint64) error {
	key := stagedKey{object, version}
	p.mu.Lock()
	s, ok := p.staged[key]
	if !ok {
		p.mu.Unlock()
		return nil
	}
	targets := make(map[int]*OSD, len(s.targets))
	for c, osd := range s.targets {
		targets[c] = osd
	}
	delete(p.staged, key)
	p.mu.Unlock()
	for c, osd := range targets {
		_ = osd.DeleteChunk(p.chunkKey(object, version, c))
	}
	return nil
}

// StagedPuts returns the number of in-flight two-phase puts.
func (p *Pool) StagedPuts() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.staged)
}

// AbortStaleStaged aborts staged puts older than the given age — clients
// that died between BeginPut and CommitObject would otherwise leak staged
// chunks on the OSDs forever. It returns the number of puts aborted.
func (p *Pool) AbortStaleStaged(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	p.mu.RLock()
	stale := make([]stagedKey, 0)
	for key, s := range p.staged {
		if s.started.Before(cutoff) || olderThan <= 0 {
			stale = append(stale, key)
		}
	}
	p.mu.RUnlock()
	for _, key := range stale {
		_ = p.AbortPut(key.object, key.version)
	}
	return len(stale)
}

// PutV writes an object through the two-phase commit path and returns the
// committed stripe version: encode into n chunks (the SIMD data plane),
// stage them in parallel, then flip the version. On any staging or commit
// failure the staged chunks are aborted and the previously committed stripe
// remains untouched.
func (p *Pool) PutV(ctx context.Context, object string, data []byte) (uint64, error) {
	dataChunks, err := p.code.Split(data)
	if err != nil {
		return 0, err
	}
	storage, err := p.code.Encode(dataChunks)
	if err != nil {
		return 0, err
	}
	version, err := p.BeginPut(object)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	errs := make([]error, p.N)
	for i := 0; i < p.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.StageChunk(ctx, object, version, i, storage[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			_ = p.AbortPut(object, version)
			return 0, err
		}
	}
	if err := p.CommitObject(object, version, len(data)); err != nil {
		_ = p.AbortPut(object, version)
		return 0, err
	}
	return version, nil
}
