package objstore

import (
	"bytes"
	"context"
	"testing"

	"sprout/internal/queue"
)

// FuzzStagedPut drives the server-side staging path with an arbitrary
// byte-coded operation stream — begin, stage, commit, abort, whole-object
// put, read — and then checks the two invariants a two-phase ingest plane
// must keep no matter how clients misbehave:
//
//  1. No staged-chunk leaks: after aborting every still-open put and reaping
//     deferred GC, the OSDs hold exactly N chunks per committed object.
//  2. No torn visibility: every committed object reads back as the payload
//     of its last committed put.
func FuzzStagedPut(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2})             // begin, stage×3, commit
	f.Add([]byte{0, 1, 3})                   // begin, stage, abort
	f.Add([]byte{4, 0, 1, 1, 4, 2, 5})       // put, begin, stages, put, commit, get
	f.Add([]byte{2, 3, 1})                   // commit/abort/stage without begin
	f.Add([]byte{0, 0, 1, 9, 1, 130, 2, 2})  // two opens, odd chunk indices, double commit
	f.Add(bytes.Repeat([]byte{0}, 20))       // many abandoned opens
	f.Add([]byte{4, 0, 1, 1, 1, 1, 1, 2, 5}) // full stripe staged then committed

	f.Fuzz(func(t *testing.T, program []byte) {
		c, err := NewCluster(ClusterConfig{
			NumOSDs:      7,
			Services:     []queue.Dist{queue.Deterministic{Value: 0}},
			RefChunkSize: 1 << 10,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		pool, err := c.CreatePool("ec", 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()

		const objects = 3
		objName := func(i byte) string { return string(rune('a' + i%objects)) }
		model := make(map[string][]byte) // last committed payload per object

		// open tracks the versions the "client" remembers having begun, in
		// order; stage/commit/abort ops pick from it.
		type openPut struct {
			object  string
			version uint64
			size    int
			staged  int
			storage [][]byte // properly encoded stripe to stage from
			joined  []byte   // the payload the stripe decodes to
		}
		var open []openPut

		payload := func(tag byte, size int) []byte {
			p := make([]byte, size)
			for i := range p {
				p[i] = tag ^ byte(i)
			}
			return p
		}
		encode := func(tag byte, size int) (storage [][]byte, joined []byte) {
			data := payload(tag, size)
			dataChunks, err := pool.Code().Split(data)
			if err != nil {
				t.Fatal(err)
			}
			storage, err = pool.Code().Encode(dataChunks)
			if err != nil {
				t.Fatal(err)
			}
			return storage, data
		}

		for pc := 0; pc < len(program); pc++ {
			op := program[pc]
			arg := byte(0)
			if pc+1 < len(program) {
				arg = program[pc+1]
			}
			switch op % 6 {
			case 0: // begin
				obj := objName(arg)
				version, err := pool.BeginPut(obj)
				if err != nil {
					t.Fatalf("begin: %v", err)
				}
				size := 600 + int(arg)*7
				storage, joined := encode(byte(version), size)
				open = append(open, openPut{object: obj, version: version, size: size, storage: storage, joined: joined})
			case 1: // stage the next chunk of the most recent open put
				if len(open) == 0 {
					continue
				}
				p := &open[len(open)-1]
				chunk := p.staged
				if chunk >= pool.N {
					chunk = int(arg) % pool.N // restage somewhere
				}
				err := pool.StageChunk(ctx, p.object, p.version, chunk, p.storage[chunk])
				if err != nil {
					t.Fatalf("stage %s v%d chunk %d: %v", p.object, p.version, chunk, err)
				}
				if chunk == p.staged {
					p.staged++
				}
			case 2: // commit the most recent open put (may legally fail)
				if len(open) == 0 {
					// Committing a version that was never begun must fail
					// cleanly and change nothing.
					if err := pool.CommitObject(objName(arg), uint64(arg)+1000, 600); err == nil {
						t.Fatal("commit of unknown staged put succeeded")
					}
					continue
				}
				p := open[len(open)-1]
				open = open[:len(open)-1]
				err := pool.CommitObject(p.object, p.version, p.size)
				if err == nil {
					// Committed: the model advances unless a newer version of
					// this object was committed already (monotonic commits).
					if cur, _ := pool.Version(p.object); cur == p.version {
						model[p.object] = p.joined
					}
				} else if p.staged >= pool.N {
					t.Fatalf("commit of fully staged %s v%d: %v", p.object, p.version, err)
				}
			case 3: // abort the oldest open put
				if len(open) == 0 {
					if err := pool.AbortPut(objName(arg), uint64(arg)+2000); err != nil {
						t.Fatalf("abort of unknown put: %v", err)
					}
					continue
				}
				p := open[0]
				open = open[1:]
				if err := pool.AbortPut(p.object, p.version); err != nil {
					t.Fatalf("abort: %v", err)
				}
			case 4: // whole-object put through the public path
				obj := objName(arg)
				data := payload(arg|128, 500+int(arg))
				if err := pool.Put(ctx, obj, data); err != nil {
					t.Fatalf("put: %v", err)
				}
				model[obj] = data
			case 5: // read and verify against the model
				obj := objName(arg)
				want, exists := model[obj]
				got, err := pool.Get(ctx, obj)
				if !exists {
					if err == nil {
						t.Fatalf("get of never-committed %s succeeded", obj)
					}
					continue
				}
				if err != nil {
					t.Fatalf("get %s: %v", obj, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("get %s: staged or stale bytes became visible", obj)
				}
			}
		}

		// Abort everything still open (including puts the driver forgot) and
		// force deferred GC; the OSDs must then hold exactly the committed
		// stripes and nothing else.
		pool.AbortStaleStaged(0)
		pool.ReapPrevious()
		if staged := pool.StagedPuts(); staged != 0 {
			t.Fatalf("%d staged puts survived AbortStaleStaged", staged)
		}
		total := 0
		for _, osd := range c.OSDs() {
			total += osd.NumChunks()
		}
		if want := len(pool.Objects()) * pool.N; total != want {
			t.Fatalf("%d chunks on OSDs for %d committed objects (want %d): staged or superseded chunks leaked",
				total, len(pool.Objects()), want)
		}
		for obj, want := range model {
			got, err := pool.Get(ctx, obj)
			if err != nil {
				t.Fatalf("final get %s: %v", obj, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("final get %s mismatches last committed put", obj)
			}
		}
	})
}
