package objstore

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"sprout/internal/queue"
)

func fastServices() []queue.Dist {
	return []queue.Dist{queue.Deterministic{Value: 0.0002}}
}

func testCluster(t *testing.T, cacheBytes int64) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		NumOSDs:            6,
		Services:           fastServices(),
		RefChunkSize:       1 << 10,
		CacheService:       queue.Deterministic{Value: 0.00001},
		CacheCapacityBytes: cacheBytes,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{NumOSDs: 0, Services: fastServices()}); err == nil {
		t.Fatal("expected error for zero OSDs")
	}
	if _, err := NewCluster(ClusterConfig{NumOSDs: 3}); err == nil {
		t.Fatal("expected error for missing services")
	}
}

func TestPoolPutGetRoundTrip(t *testing.T) {
	c := testCluster(t, 0)
	pool, err := c.CreatePool("ec74", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 10*1024)
	rng.Read(payload)
	ctx := context.Background()
	if err := pool.Put(ctx, "obj1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := pool.Get(ctx, "obj1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round-trip mismatch")
	}
	size, err := pool.ObjectSize("obj1")
	if err != nil || size != len(payload) {
		t.Fatalf("ObjectSize = %d, %v", size, err)
	}
	if names := pool.Objects(); len(names) != 1 || names[0] != "obj1" {
		t.Fatalf("Objects = %v", names)
	}
}

func TestPoolGetMissing(t *testing.T) {
	c := testCluster(t, 0)
	pool, _ := c.CreatePool("p", 4, 2)
	if _, err := pool.Get(context.Background(), "nope"); err == nil {
		t.Fatal("expected error for missing object")
	}
	if _, err := pool.ObjectSize("nope"); err == nil {
		t.Fatal("expected error for missing object size")
	}
	if _, err := pool.GetChunk(context.Background(), "nope", 0); err == nil {
		t.Fatal("expected error for missing object chunk")
	}
}

func TestPoolChunkDistribution(t *testing.T) {
	// Chunks of an object land on N distinct OSDs; across many objects every
	// OSD gets some load (CRUSH-like spreading).
	c := testCluster(t, 0)
	pool, _ := c.CreatePool("spread", 4, 2)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		payload := make([]byte, 512)
		rng.Read(payload)
		if err := pool.Put(ctx, string(rune('a'+i%26))+string(rune('0'+i/26)), payload); err != nil {
			t.Fatal(err)
		}
	}
	loaded := 0
	for _, osd := range c.OSDs() {
		served, _ := osd.Stats()
		if served > 0 {
			loaded++
		}
	}
	if loaded < 5 {
		t.Fatalf("only %d of 6 OSDs received chunks; placement too skewed", loaded)
	}
}

func TestPoolGetChunk(t *testing.T) {
	c := testCluster(t, 0)
	pool, _ := c.CreatePool("chunks", 5, 3)
	ctx := context.Background()
	payload := make([]byte, 3000)
	rand.New(rand.NewSource(4)).Read(payload)
	if err := pool.Put(ctx, "o", payload); err != nil {
		t.Fatal(err)
	}
	// Chunk 0 of a systematic code is the first data chunk.
	ch0, err := pool.GetChunk(ctx, "o", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ch0, payload[:1000]) {
		t.Fatal("systematic chunk 0 should equal the first data slice")
	}
	if _, err := pool.GetChunk(ctx, "o", 99); err == nil {
		t.Fatal("expected error for out-of-range chunk")
	}
}

func TestCreatePoolValidation(t *testing.T) {
	c := testCluster(t, 0)
	if _, err := c.CreatePool("bad", 2, 3); err == nil {
		t.Fatal("expected error for n < k")
	}
	if _, err := c.CreatePool("bad2", 10, 2); err == nil {
		t.Fatal("expected error for more chunks than OSDs")
	}
	if _, err := c.CreatePool("dup", 4, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePool("dup", 4, 2); err == nil {
		t.Fatal("expected error for duplicate pool name")
	}
	if _, err := c.Pool("dup"); err != nil {
		t.Fatal("existing pool lookup failed")
	}
	if _, err := c.Pool("missing"); err == nil {
		t.Fatal("expected error for unknown pool")
	}
}

func TestCreateEquivalentPools(t *testing.T) {
	c := testCluster(t, 0)
	pools, err := c.CreateEquivalentPools("eq", 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pools) != 4 {
		t.Fatalf("expected pools for d=0..3, got %d", len(pools))
	}
	for d, p := range pools {
		if p.K != 4-d || p.N != 6 {
			t.Fatalf("pool d=%d has (%d,%d)", d, p.N, p.K)
		}
	}
}

func TestReadThroughLRUCachesObjects(t *testing.T) {
	c := testCluster(t, 1<<20)
	pool, _ := c.CreatePool("base", 5, 3)
	ctx := context.Background()
	payload := make([]byte, 6000)
	rand.New(rand.NewSource(5)).Read(payload)
	if err := pool.Put(ctx, "hot", payload); err != nil {
		t.Fatal(err)
	}
	data, _, err := c.ReadThroughLRU(ctx, pool, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("miss read returned wrong data")
	}
	if !c.CacheTier().Contains("hot") {
		t.Fatal("object should be promoted into the cache tier after a miss")
	}
	// A hit must be served from the cache tier alone: no OSD serves a chunk
	// for it. (Comparing wall-clock latencies here is flaky on loaded
	// machines — sub-millisecond timer sleeps overshoot under contention.)
	// Let the miss read's two cancelled straggler fetches drain first so
	// their completions don't land between the snapshots.
	time.Sleep(20 * time.Millisecond)
	servedBefore := int64(0)
	for _, osd := range c.OSDs() {
		served, _ := osd.Stats()
		servedBefore += served
	}
	data, _, err = c.ReadThroughLRU(ctx, pool, "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("hit read returned wrong data")
	}
	servedAfter := int64(0)
	for _, osd := range c.OSDs() {
		served, _ := osd.Stats()
		servedAfter += served
	}
	if servedAfter != servedBefore {
		t.Fatalf("cache hit read %d chunks from OSDs, want 0", servedAfter-servedBefore)
	}
	if hits, _, _ := c.CacheTier().Stats(); hits == 0 {
		t.Fatal("cache tier recorded no hit")
	}
}

func TestReadFunctionalUsesEquivalentPool(t *testing.T) {
	c := testCluster(t, 1<<20)
	pools, err := c.CreateEquivalentPools("eq", 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	payload := make([]byte, 4500)
	rand.New(rand.NewSource(6)).Read(payload)
	// Write the object into every equivalent pool (the evaluation
	// methodology writes according to the object-pool map).
	for _, p := range pools {
		if err := p.Put(ctx, "obj", payload); err != nil {
			t.Fatal(err)
		}
	}
	for d := 0; d < 3; d++ {
		data, lat, err := c.ReadFunctional(ctx, pools, "obj", d, 3, int64(len(payload)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("d=%d read returned wrong data", d)
		}
		if lat <= 0 {
			t.Fatalf("d=%d latency = %v", d, lat)
		}
	}
	// d == k: served entirely from cache, no payload returned.
	_, lat, err := c.ReadFunctional(ctx, pools, "obj", 3, 3, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || lat > 100*time.Millisecond {
		t.Fatalf("fully cached latency = %v", lat)
	}
	// Unknown d pool.
	if _, _, err := c.ReadFunctional(ctx, pools, "obj", -1, 3, 0); err == nil {
		t.Fatal("expected error for missing equivalent pool")
	}
}

func TestOSDContextCancellation(t *testing.T) {
	// Service time ~50ms for a 1 KiB chunk; the context expires first.
	osd := NewOSD(0, queue.Deterministic{Value: 0.05}, 1024, 1)
	if err := osd.PutChunk(context.Background(), "k", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := osd.GetChunk(ctx, "k")
	if err == nil {
		t.Fatal("expected context deadline error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context cancellation did not interrupt the simulated service time")
	}
}

func TestOSDMissingChunk(t *testing.T) {
	osd := NewOSD(0, queue.Deterministic{Value: 0}, 1024, 1)
	if _, err := osd.GetChunk(context.Background(), "missing"); err == nil {
		t.Fatal("expected error for missing chunk")
	}
	if osd.HasChunk("missing") {
		t.Fatal("HasChunk should be false")
	}
}

func TestTableIVAndVCalibration(t *testing.T) {
	rows := TableIVStorage()
	if len(rows) != 5 {
		t.Fatalf("Table IV rows = %d", len(rows))
	}
	d, err := StorageDistFor(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated mean must match the published value (147.8462 ms).
	if got := d.Mean(); got < 0.14 || got > 0.16 {
		t.Fatalf("16MB mean service = %v s", got)
	}
	// Variance matches as well.
	if v := queue.Variance(d); v < 380e-6 || v > 400e-6 {
		t.Fatalf("16MB service variance = %v s^2", v)
	}
	cacheDist, err := CacheDistFor(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := cacheDist.Mean(); got < 0.029 || got > 0.032 {
		t.Fatalf("16MB cache latency = %v s", got)
	}
	// Cache reads are much faster than storage reads for every size.
	for _, row := range TableVCacheLatencies() {
		sd, err := StorageDistFor(row.ChunkSizeBytes)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := CacheDistFor(row.ChunkSizeBytes)
		if err != nil {
			t.Fatal(err)
		}
		if cd.Mean() >= sd.Mean() {
			t.Fatalf("cache read slower than storage read for %d-byte chunks", row.ChunkSizeBytes)
		}
	}
}

func TestStorageDistInterpolatesNearestRow(t *testing.T) {
	// A chunk size between rows scales the nearest row linearly.
	d, err := StorageDistFor(32 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() <= 0 {
		t.Fatal("interpolated distribution has non-positive mean")
	}
}

func TestPaperTestbedConfig(t *testing.T) {
	cfg, err := PaperTestbedConfig(16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumOSDs != 12 || len(cfg.Services) != 12 {
		t.Fatalf("testbed config = %+v", cfg)
	}
	if cfg.CacheCapacityBytes != 10<<30 {
		t.Fatal("cache capacity should be 10 GB")
	}
	if _, err := NewCluster(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 100: 128, 400: 512}
	for in, want := range cases {
		if got := nextPowerOfTwo(in); got != want {
			t.Fatalf("nextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}
