package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sprout/internal/cache"
	"sprout/internal/erasure"
	"sprout/internal/queue"
)

// ClusterConfig describes an emulated Ceph cluster.
type ClusterConfig struct {
	// NumOSDs is the number of OSDs backing the storage tier.
	NumOSDs int
	// Service distributions per OSD (cycled if shorter than NumOSDs); these
	// model the HDD-backed storage tier (Table IV).
	Services []queue.Dist
	// RefChunkSize is the chunk size (bytes) the service distributions were
	// calibrated for; service times scale linearly with chunk size.
	RefChunkSize int64
	// CacheService models SSD cache-tier reads (Table V). Nil means
	// instantaneous cache reads.
	CacheService queue.Dist
	// CacheCapacityBytes is the cache-tier capacity for the LRU baseline and
	// the chunk budget (divided by chunk size) for functional caching.
	CacheCapacityBytes int64
	// Seed seeds the OSD service-time generators.
	Seed int64
}

// Cluster is an emulated Ceph cluster: a set of OSDs shared by one or more
// erasure-coded pools, plus an optional cache tier.
type Cluster struct {
	cfg  ClusterConfig
	osds []*OSD

	pools map[string]*Pool

	// cacheTier is the replicated LRU write-back cache tier baseline.
	cacheTier *cache.LRU
}

// NewCluster builds the emulated cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumOSDs <= 0 {
		return nil, errors.New("objstore: cluster needs at least one OSD")
	}
	if len(cfg.Services) == 0 {
		return nil, errors.New("objstore: cluster needs service distributions")
	}
	if cfg.RefChunkSize <= 0 {
		cfg.RefChunkSize = 1 << 20
	}
	osds := make([]*OSD, cfg.NumOSDs)
	for i := range osds {
		osds[i] = NewOSD(i, cfg.Services[i%len(cfg.Services)], cfg.RefChunkSize, cfg.Seed+int64(i)*7919)
	}
	c := &Cluster{
		cfg:   cfg,
		osds:  osds,
		pools: make(map[string]*Pool),
	}
	if cfg.CacheCapacityBytes > 0 {
		c.cacheTier = cache.NewLRU(cfg.CacheCapacityBytes)
	}
	return c, nil
}

// OSDs returns the cluster's OSDs.
func (c *Cluster) OSDs() []*OSD { return c.osds }

// CreatePool creates an erasure-coded pool backed by all OSDs.
func (c *Cluster) CreatePool(name string, n, k int) (*Pool, error) {
	if _, exists := c.pools[name]; exists {
		return nil, fmt.Errorf("objstore: pool %q already exists", name)
	}
	p, err := NewPool(name, n, k, c.osds, 0)
	if err != nil {
		return nil, err
	}
	if c.cacheTier != nil {
		// An overwrite must never leave the previous object bytes in the LRU
		// cache tier: invalidate on every committed put.
		p.OnCommit(c.cacheTier.Remove)
	}
	c.pools[name] = p
	return p, nil
}

// Pool returns a pool by name.
func (c *Cluster) Pool(name string) (*Pool, error) {
	p, ok := c.pools[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPoolNotFound, name)
	}
	return p, nil
}

// PoolNames returns the names of all pools, sorted.
func (c *Cluster) PoolNames() []string {
	names := make([]string, 0, len(c.pools))
	for name := range c.pools {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CreateEquivalentPools creates the pools (n, k-d) for d = 0..k used to
// emulate functional caching with d chunks in cache, following the
// methodology of Section V-C. Pool names are prefix-d. The (n, 0) pool is
// represented by d = k and means "served entirely from cache"; it is not
// created as a storage pool.
func (c *Cluster) CreateEquivalentPools(prefix string, n, k int) (map[int]*Pool, error) {
	pools := make(map[int]*Pool, k)
	for d := 0; d < k; d++ {
		name := fmt.Sprintf("%s-%d", prefix, d)
		p, err := c.CreatePool(name, n, k-d)
		if err != nil {
			return nil, err
		}
		pools[d] = p
	}
	return pools, nil
}

// cacheRead simulates an SSD cache-tier read of size bytes and returns its
// latency.
func (c *Cluster) cacheRead(ctx context.Context, size int64) (time.Duration, error) {
	if c.cfg.CacheService == nil {
		return 0, ctx.Err()
	}
	// A single shared generator is enough here: cache reads are not a
	// queueing bottleneck in the paper's setup.
	d := time.Duration(queue.Scaled{Base: c.cfg.CacheService, Factor: float64(size) / float64(c.cfg.RefChunkSize)}.Mean() * float64(time.Second))
	return d, sleepCtx(ctx, d)
}

// ReadThroughLRU reads an object with the Ceph cache-tier baseline: on a
// cache hit the whole object is served from the (replicated, SSD-backed)
// cache tier; on a miss it is promoted from the erasure-coded storage pool
// into the LRU tier and served. It returns the object payload and the
// end-to-end latency.
func (c *Cluster) ReadThroughLRU(ctx context.Context, pool *Pool, object string) ([]byte, time.Duration, error) {
	start := time.Now()
	if c.cacheTier != nil {
		if data, ok := c.cacheTier.Get(object); ok {
			if _, err := c.cacheRead(ctx, int64(len(data))); err != nil {
				return nil, 0, err
			}
			return data, time.Since(start), nil
		}
	}
	data, err := pool.Get(ctx, object)
	if err != nil {
		return nil, 0, err
	}
	if c.cacheTier != nil {
		// Write-back promotion; eviction is handled by the LRU itself.
		if err := c.cacheTier.Put(object, data); err != nil && !errors.Is(err, cache.ErrTooLarge) {
			return nil, 0, err
		}
	}
	return data, time.Since(start), nil
}

// ReadFunctional reads an object under functional caching with d chunks in
// cache: the read is served from the equivalent (n, k-d) pool (d == k means
// the object is entirely in cache and only cache latency applies). Following
// the paper's equivalent-code methodology, writers are expected to store in
// pool d only the (k-d)/k portion of the object that must still come from
// storage, so chunk sizes match the original (n, k) pool. It returns the
// payload read from storage and the end-to-end latency.
func (c *Cluster) ReadFunctional(ctx context.Context, pools map[int]*Pool, object string, d, k int, objectSize int64) ([]byte, time.Duration, error) {
	start := time.Now()
	if d >= k {
		// Entire object in cache: only the SSD read latency applies.
		if _, err := c.cacheRead(ctx, objectSize); err != nil {
			return nil, 0, err
		}
		return nil, time.Since(start), nil
	}
	pool, ok := pools[d]
	if !ok {
		return nil, 0, fmt.Errorf("%w: equivalent pool for d=%d", ErrPoolNotFound, d)
	}
	data, err := pool.Get(ctx, object)
	if err != nil {
		return nil, 0, err
	}
	// Cached chunks are read in parallel with the storage chunks; their
	// latency is dominated by the storage reads (Table V vs Table IV), so it
	// does not add to the critical path.
	return data, time.Since(start), nil
}

// CacheTier exposes the LRU cache tier (nil when no cache is configured).
func (c *Cluster) CacheTier() *cache.LRU { return c.cacheTier }

// CoderStats aggregates the erasure data-plane counters across every pool
// in the cluster, so callers can report cluster-wide coding throughput and
// decode-plan cache effectiveness.
func (c *Cluster) CoderStats() erasure.CoderStats {
	var total erasure.CoderStats
	for _, p := range c.pools {
		total = total.Add(p.CoderStats())
	}
	return total
}
