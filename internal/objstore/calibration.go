package objstore

import (
	"fmt"
	"sort"

	"sprout/internal/queue"
)

// ChunkServiceMeasurement is one row of the paper's Table IV / Table V:
// measured chunk service statistics for a given chunk size.
type ChunkServiceMeasurement struct {
	ChunkSizeBytes int64
	MeanMillis     float64
	VarianceMillis float64
}

// TableIVStorage returns the published HDD-backed OSD read service-time
// measurements (mean and variance, milliseconds) per chunk size.
func TableIVStorage() []ChunkServiceMeasurement {
	const mb = int64(1) << 20
	return []ChunkServiceMeasurement{
		{ChunkSizeBytes: 1 * mb, MeanMillis: 6.6696, VarianceMillis: 0.0963},
		{ChunkSizeBytes: 4 * mb, MeanMillis: 35.8800, VarianceMillis: 2.6925},
		{ChunkSizeBytes: 16 * mb, MeanMillis: 147.8462, VarianceMillis: 388.9872},
		{ChunkSizeBytes: 64 * mb, MeanMillis: 355.0800, VarianceMillis: 1256.6100},
		{ChunkSizeBytes: 256 * mb, MeanMillis: 6758.06, VarianceMillis: 554180},
	}
}

// TableVCacheLatencies returns the published SSD cache read latencies
// (milliseconds) per chunk size.
func TableVCacheLatencies() []ChunkServiceMeasurement {
	const mb = int64(1) << 20
	return []ChunkServiceMeasurement{
		{ChunkSizeBytes: 1 * mb, MeanMillis: 1.86619},
		{ChunkSizeBytes: 4 * mb, MeanMillis: 7.35639},
		{ChunkSizeBytes: 16 * mb, MeanMillis: 30.4927},
		{ChunkSizeBytes: 64 * mb, MeanMillis: 97.0968},
		{ChunkSizeBytes: 256 * mb, MeanMillis: 349.133},
	}
}

// StorageDistFor returns a gamma service-time distribution (in seconds)
// calibrated to the Table IV measurement for the given chunk size. For chunk
// sizes between published rows the nearest row is scaled linearly.
func StorageDistFor(chunkSize int64) (queue.Dist, error) {
	return distFor(chunkSize, TableIVStorage())
}

// CacheDistFor returns a deterministic SSD read-latency distribution (in
// seconds) calibrated to Table V for the given chunk size.
func CacheDistFor(chunkSize int64) (queue.Dist, error) {
	rows := TableVCacheLatencies()
	row := nearestRow(chunkSize, rows)
	scale := float64(chunkSize) / float64(row.ChunkSizeBytes)
	return queue.Deterministic{Value: row.MeanMillis / 1000 * scale}, nil
}

func distFor(chunkSize int64, rows []ChunkServiceMeasurement) (queue.Dist, error) {
	row := nearestRow(chunkSize, rows)
	g, err := queue.GammaFromMeanVar(row.MeanMillis/1000, row.VarianceMillis/1e6)
	if err != nil {
		return nil, fmt.Errorf("objstore: calibrating %d-byte chunks: %w", chunkSize, err)
	}
	scale := float64(chunkSize) / float64(row.ChunkSizeBytes)
	if scale == 1 {
		return g, nil
	}
	return queue.Scaled{Base: g, Factor: scale}, nil
}

func nearestRow(chunkSize int64, rows []ChunkServiceMeasurement) ChunkServiceMeasurement {
	sorted := append([]ChunkServiceMeasurement(nil), rows...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ChunkSizeBytes < sorted[b].ChunkSizeBytes })
	best := sorted[0]
	for _, r := range sorted {
		if absInt64(r.ChunkSizeBytes-chunkSize) < absInt64(best.ChunkSizeBytes-chunkSize) {
			best = r
		}
	}
	return best
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// PaperTestbedConfig returns a ClusterConfig mirroring the paper's testbed
// for a given chunk size: 12 OSDs whose service times follow the Table IV
// calibration (with mild heterogeneity across OSDs), an SSD cache tier
// following Table V, and a 10 GB cache.
func PaperTestbedConfig(chunkSize int64, seed int64) (ClusterConfig, error) {
	base, err := StorageDistFor(chunkSize)
	if err != nil {
		return ClusterConfig{}, err
	}
	cacheDist, err := CacheDistFor(chunkSize)
	if err != nil {
		return ClusterConfig{}, err
	}
	// Mild heterogeneity: the paper's 12 servers differ by up to ~1.7x in
	// mean service rate; reuse the same relative pattern.
	factors := []float64{1.0, 1.0, 1.0, 1.0, 1.1, 1.1, 1.5, 1.5, 1.3, 1.3, 1.7, 1.7}
	services := make([]queue.Dist, len(factors))
	for i, f := range factors {
		services[i] = queue.Scaled{Base: base, Factor: f}
	}
	return ClusterConfig{
		NumOSDs:            12,
		Services:           services,
		RefChunkSize:       chunkSize,
		CacheService:       cacheDist,
		CacheCapacityBytes: 10 << 30,
		Seed:               seed,
	}, nil
}
