package objstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sprout/internal/cluster"
)

// NodeState is the lifecycle state of an OSD.
type NodeState int32

// OSD lifecycle states. An OSD serves chunk operations while Up or
// Recovering; while Down every operation fast-fails with ErrOSDDown.
const (
	StateUp NodeState = iota
	StateDown
	StateRecovering
)

func (s NodeState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateRecovering:
		return "recovering"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// State returns the OSD's current lifecycle state.
func (o *OSD) State() NodeState { return NodeState(o.state.Load()) }

// Alive reports whether the OSD serves chunk operations (Up or Recovering).
func (o *OSD) Alive() bool { return o.State() != StateDown }

// Fail takes the OSD Down: subsequent chunk operations fast-fail with
// ErrOSDDown. With loseChunks the stored chunks are dropped as well,
// modelling permanent media loss rather than a transient outage.
func (o *OSD) Fail(loseChunks bool) {
	o.state.Store(int32(StateDown))
	if loseChunks {
		o.dataMu.Lock()
		lost := len(o.chunks)
		o.chunks = make(map[string][]byte)
		o.dataMu.Unlock()
		o.lostChunks.Add(int64(lost))
	}
}

// Recover brings a Down OSD back: Recovering if it lost chunks that the
// repair plane still needs to backfill, Up otherwise. Recovering OSDs serve
// traffic; MarkUp promotes them once repair declares the pool healthy.
func (o *OSD) Recover() {
	if o.State() != StateDown {
		return
	}
	o.consecErrs.Store(0)
	if o.lostChunks.Load() > 0 {
		o.state.Store(int32(StateRecovering))
		return
	}
	o.state.Store(int32(StateUp))
}

// MarkUp promotes a Recovering OSD to Up (called by the repair plane once no
// degraded objects remain). It has no effect on a Down OSD — in particular
// the loss record survives, so a concurrent re-failure still rejoins as
// Recovering later.
func (o *OSD) MarkUp() {
	if o.state.CompareAndSwap(int32(StateRecovering), int32(StateUp)) {
		o.lostChunks.Store(0)
	}
}

// observe records the outcome of one chunk operation in the OSD's health
// counters and passes the error through. Context cancellation is the caller
// abandoning the fetch (hedging, fastest-k reads), not a node fault, so it
// does not count against the OSD.
func (o *OSD) observe(err error) error {
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			o.errors.Add(1)
			o.consecErrs.Add(1)
		}
		return err
	}
	o.consecErrs.Store(0)
	return nil
}

// OSDHealth is a snapshot of one OSD's lifecycle and health counters.
type OSDHealth struct {
	ID    int
	State NodeState
	// Served counts completed chunk operations; Busy is the cumulative
	// simulated service time behind them.
	Served int64
	Busy   time.Duration
	// Errors counts failed chunk operations (down rejections, missing
	// chunks, timeouts); ConsecutiveErrors resets on every success and is
	// the signal the failure detector thresholds on.
	Errors            int64
	ConsecutiveErrors int64
	// Chunks is the number of chunks currently stored; LostChunks counts
	// chunks dropped by a Fail(loseChunks=true) that repair has not yet
	// acknowledged via MarkUp.
	Chunks     int
	LostChunks int64
}

// Health returns a snapshot of the OSD's lifecycle and health counters.
func (o *OSD) Health() OSDHealth {
	served, busy := o.Stats()
	return OSDHealth{
		ID:                o.ID,
		State:             o.State(),
		Served:            served,
		Busy:              busy,
		Errors:            o.errors.Load(),
		ConsecutiveErrors: o.consecErrs.Load(),
		Chunks:            o.NumChunks(),
		LostChunks:        o.lostChunks.Load(),
	}
}

// ChunkLocation describes where one coded chunk of an object lives and
// whether it is currently readable.
type ChunkLocation struct {
	Chunk int
	OSD   *OSD
	// Alive reports the hosting OSD serves requests (Up or Recovering);
	// Present reports the OSD actually stores the chunk payload. A chunk is
	// readable iff both hold.
	Alive   bool
	Present bool
}

// ChunkLocations returns the health-aware placement view of an object: one
// entry per coded chunk, resolved through repair overrides, annotated with
// the hosting OSD's liveness and whether the payload is present.
func (p *Pool) ChunkLocations(object string) ([]ChunkLocation, error) {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	locs := make([]ChunkLocation, p.N)
	for i := 0; i < p.N; i++ {
		osd := p.osdForChunk(meta.pg, object, meta.version, i)
		locs[i] = ChunkLocation{
			Chunk:   i,
			OSD:     osd,
			Alive:   osd.Alive(),
			Present: osd.HasChunk(p.chunkKey(object, meta.version, i)),
		}
	}
	return locs, nil
}

// AliveOSDs returns the pool's OSDs that currently serve requests.
func (p *Pool) AliveOSDs() []*OSD {
	alive := make([]*OSD, 0, len(p.osds))
	for _, osd := range p.osds {
		if osd.Alive() {
			alive = append(alive, osd)
		}
	}
	return alive
}

// OSDHealth returns health snapshots for every OSD backing the pool.
func (p *Pool) OSDHealth() []OSDHealth {
	out := make([]OSDHealth, len(p.osds))
	for i, osd := range p.osds {
		out[i] = osd.Health()
	}
	return out
}

// DegradedObject describes an object with unreadable chunks: the chunk
// indices lost and the number of chunks still readable.
type DegradedObject struct {
	Object    string
	Missing   []int
	Surviving int
}

// DegradedObjects scans the pool for objects whose chunks are unreadable
// (hosting OSD down, or payload lost) and reports them with their surviving
// chunk counts. The repair plane prioritises the fewest-surviving objects.
func (p *Pool) DegradedObjects() []DegradedObject {
	var out []DegradedObject
	for _, object := range p.Objects() {
		locs, err := p.ChunkLocations(object)
		if err != nil {
			continue
		}
		var missing []int
		surviving := 0
		for _, loc := range locs {
			if loc.Alive && loc.Present {
				surviving++
			} else {
				missing = append(missing, loc.Chunk)
			}
		}
		if len(missing) > 0 {
			out = append(out, DegradedObject{Object: object, Missing: missing, Surviving: surviving})
		}
	}
	return out
}

// PlaceChunk writes a reconstructed chunk back into the pool on a live OSD:
// the chunk's current home if it is alive, otherwise a live OSD that hosts
// no other chunk of the object (recorded as a repair override so reads and
// future repairs resolve the new location). It returns the OSD that
// received the chunk.
func (p *Pool) PlaceChunk(ctx context.Context, object string, chunk int, data []byte) (*OSD, error) {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	if chunk < 0 || chunk >= p.N {
		return nil, fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
	}
	key := p.chunkKey(object, meta.version, chunk)
	// Choose the target and reserve it in the override map under the pool
	// lock, so two repairs placing different chunks of the same object can
	// never pick the same OSD.
	p.mu.Lock()
	resolve := func(c int) *OSD {
		if osd, ok := p.overrides[p.chunkKey(object, meta.version, c)]; ok {
			return osd
		}
		return p.pgOSDs[meta.pg][c]
	}
	prev, hadPrev := p.overrides[key]
	target := resolve(chunk)
	if !target.Alive() {
		// The chunk's home is down: re-place on a live OSD hosting no other
		// chunk of this object, so per-object placement stays one chunk per
		// node (a later failure can only take out one chunk).
		used := make(map[int]bool, p.N)
		for i := 0; i < p.N; i++ {
			if i != chunk {
				used[resolve(i).ID] = true
			}
		}
		target = nil
		for _, osd := range p.osds {
			if osd.Alive() && !used[osd.ID] {
				if target == nil || osd.NumChunks() < target.NumChunks() {
					target = osd
				}
			}
		}
		if target == nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: object %s chunk %d", ErrNoRepairTarget, object, chunk)
		}
	}
	if target == p.pgOSDs[meta.pg][chunk] {
		delete(p.overrides, key)
	} else {
		p.overrides[key] = target
	}
	p.mu.Unlock()

	if err := target.PutChunk(ctx, key, data); err != nil {
		p.mu.Lock()
		if hadPrev {
			p.overrides[key] = prev
		} else {
			delete(p.overrides, key)
		}
		p.mu.Unlock()
		return nil, err
	}
	// An overwrite may have flipped the stripe version while the chunk was
	// being written; the repaired chunk then belongs to a dead stripe and
	// must not linger as an orphan.
	p.mu.Lock()
	if cur, ok := p.objects[object]; !ok || cur.version != meta.version {
		delete(p.overrides, key)
		p.mu.Unlock()
		_ = target.DeleteChunk(key)
		return target, nil
	}
	p.mu.Unlock()
	return target, nil
}

// ObjectPG exposes the placement group of an object (used by tests).
func (p *Pool) ObjectPG(object string) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	meta, ok := p.objects[object]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	return meta.pg, nil
}

// ClusterView exports the pool's live topology as a cluster description the
// Sprout controller and optimizer operate on: one node per OSD (same IDs,
// same service distribution) and one file per object in sorted-name order
// (file ID = position), with each file's placement resolved to the OSDs
// actually hosting its chunks. lambdas, when non-nil, assigns per-file
// arrival rates (len must match the object count).
func (p *Pool) ClusterView(lambdas []float64) (*cluster.Cluster, error) {
	nodes := make([]cluster.Node, len(p.osds))
	for i, osd := range p.osds {
		nodes[i] = cluster.Node{
			ID:      osd.ID,
			Name:    fmt.Sprintf("osd-%d", osd.ID),
			Service: osd.Service(),
		}
	}
	objects := p.Objects()
	if lambdas != nil && len(lambdas) != len(objects) {
		return nil, fmt.Errorf("objstore: %d rates for %d objects", len(lambdas), len(objects))
	}
	files := make([]cluster.File, len(objects))
	for i, object := range objects {
		p.mu.RLock()
		meta := p.objects[object]
		p.mu.RUnlock()
		placement := make([]int, p.N)
		for c := 0; c < p.N; c++ {
			placement[c] = p.osdForChunk(meta.pg, object, meta.version, c).ID
		}
		lambda := 0.0
		if lambdas != nil {
			lambda = lambdas[i]
		}
		files[i] = cluster.File{
			ID:        i,
			Name:      object,
			SizeBytes: int64(meta.size),
			K:         p.K,
			N:         p.N,
			Placement: placement,
			Lambda:    lambda,
		}
	}
	clu := &cluster.Cluster{Nodes: nodes, Files: files}
	if err := clu.Validate(); err != nil {
		return nil, err
	}
	return clu, nil
}

// OSD returns the cluster's OSD with the given ID.
func (c *Cluster) OSD(id int) (*OSD, error) {
	for _, osd := range c.osds {
		if osd.ID == id {
			return osd, nil
		}
	}
	return nil, fmt.Errorf("objstore: no osd %d", id)
}

// FailOSDs takes the given OSDs Down, optionally dropping their chunks.
func (c *Cluster) FailOSDs(loseChunks bool, ids ...int) error {
	for _, id := range ids {
		osd, err := c.OSD(id)
		if err != nil {
			return err
		}
		osd.Fail(loseChunks)
	}
	return nil
}

// RecoverOSDs brings the given OSDs back from Down.
func (c *Cluster) RecoverOSDs(ids ...int) error {
	for _, id := range ids {
		osd, err := c.OSD(id)
		if err != nil {
			return err
		}
		osd.Recover()
	}
	return nil
}

// Health returns health snapshots for every OSD, sorted by ID.
func (c *Cluster) Health() []OSDHealth {
	out := make([]OSDHealth, len(c.osds))
	for i, osd := range c.osds {
		out[i] = osd.Health()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
