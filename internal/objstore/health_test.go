package objstore

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sprout/internal/erasure"
	"sprout/internal/queue"
)

func healthTestCluster(t *testing.T) (*Cluster, *Pool) {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		NumOSDs:      10,
		Services:     []queue.Dist{queue.Deterministic{Value: 0}},
		RefChunkSize: 1 << 10,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := c.CreatePool("ec", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c, pool
}

func putObjects(t *testing.T, pool *Pool, n, size int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if err := pool.Put(ctx, fmt.Sprintf("obj-%03d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOSDLifecycle(t *testing.T) {
	c, pool := healthTestCluster(t)
	putObjects(t, pool, 4, 4<<10)
	ctx := context.Background()

	osd, err := c.OSD(0)
	if err != nil {
		t.Fatal(err)
	}
	if osd.State() != StateUp || !osd.Alive() {
		t.Fatalf("fresh OSD state %v", osd.State())
	}

	// Down without chunk loss: ops fast-fail, recovery goes straight to Up.
	osd.Fail(false)
	if osd.State() != StateDown || osd.Alive() {
		t.Fatalf("state after Fail: %v", osd.State())
	}
	if err := osd.PutChunk(ctx, "x", []byte("y")); !errors.Is(err, ErrOSDDown) {
		t.Fatalf("PutChunk on down OSD: %v", err)
	}
	if _, err := osd.GetChunk(ctx, "x"); !errors.Is(err, ErrOSDDown) {
		t.Fatalf("GetChunk on down OSD: %v", err)
	}
	if err := osd.DeleteChunk("x"); !errors.Is(err, ErrOSDDown) {
		t.Fatalf("DeleteChunk on down OSD: %v", err)
	}
	h := osd.Health()
	if h.Errors == 0 || h.ConsecutiveErrors == 0 {
		t.Fatalf("down rejections not counted: %+v", h)
	}
	osd.Recover()
	if osd.State() != StateUp {
		t.Fatalf("recover without loss: state %v, want up", osd.State())
	}

	// Down with chunk loss: recovery lands in Recovering until MarkUp.
	before := osd.NumChunks()
	if before == 0 {
		t.Fatal("OSD hosts no chunks; placement assumption broken")
	}
	osd.Fail(true)
	if osd.NumChunks() != 0 {
		t.Fatal("Fail(lose) kept chunks")
	}
	osd.Recover()
	if osd.State() != StateRecovering {
		t.Fatalf("recover after loss: state %v, want recovering", osd.State())
	}
	if !osd.Alive() {
		t.Fatal("recovering OSD must serve traffic")
	}
	osd.MarkUp()
	if osd.State() != StateUp || osd.Health().LostChunks != 0 {
		t.Fatalf("MarkUp: state %v, lost %d", osd.State(), osd.Health().LostChunks)
	}
}

func TestPutRollsBackPartialWrites(t *testing.T) {
	c, pool := healthTestCluster(t)
	ctx := context.Background()

	// One OSD down: the staging path re-places its chunks onto live OSDs, so
	// every put still succeeds and lands one chunk per live OSD.
	osd, err := c.OSD(3)
	if err != nil {
		t.Fatal(err)
	}
	osd.Fail(false)
	payload := make([]byte, 8<<10)
	for i := 0; i < 8; i++ {
		if err := pool.Put(ctx, fmt.Sprintf("leak-%02d", i), payload); err != nil {
			t.Fatalf("put with one OSD down: %v", err)
		}
	}
	if osd.NumChunks() != 0 {
		t.Fatalf("down OSD received %d staged chunks", osd.NumChunks())
	}
	for i := 0; i < 8; i++ {
		if _, err := pool.Get(ctx, fmt.Sprintf("leak-%02d", i)); err != nil {
			t.Fatalf("reading object written during outage: %v", err)
		}
	}

	// Too few live OSDs for a full stripe: staging cannot find targets, the
	// put fails, and the aborted chunks leave no orphans anywhere.
	for _, id := range []int{4, 5, 6} {
		o, err := c.OSD(id)
		if err != nil {
			t.Fatal(err)
		}
		o.Fail(false)
	}
	for i := 0; i < 4; i++ {
		err := pool.Put(ctx, fmt.Sprintf("fail-%02d", i), payload)
		if !errors.Is(err, ErrNoRepairTarget) && !errors.Is(err, ErrOSDDown) {
			t.Fatalf("put with 6 of 10 OSDs: err %v, want staging failure", err)
		}
	}
	if staged := pool.StagedPuts(); staged != 0 {
		t.Fatalf("%d staged puts left after aborts", staged)
	}
	// Every stored chunk must belong to a successfully written object.
	okObjects := make(map[string]bool)
	for _, name := range pool.Objects() {
		okObjects[name] = true
	}
	total := 0
	for _, o := range c.OSDs() {
		total += o.NumChunks()
	}
	if want := len(okObjects) * 7; total != want {
		t.Fatalf("%d chunks stored for %d complete objects (want %d) — failed puts leaked",
			total, len(okObjects), want)
	}
}

func TestChunkLocationsAndDegradedObjects(t *testing.T) {
	c, pool := healthTestCluster(t)
	putObjects(t, pool, 6, 4<<10)

	locs, err := pool.ChunkLocations("obj-000")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 7 {
		t.Fatalf("%d locations, want 7", len(locs))
	}
	for _, loc := range locs {
		if !loc.Alive || !loc.Present {
			t.Fatalf("healthy chunk %d reported alive=%v present=%v", loc.Chunk, loc.Alive, loc.Present)
		}
	}
	if deg := pool.DegradedObjects(); len(deg) != 0 {
		t.Fatalf("healthy pool reports %d degraded objects", len(deg))
	}

	// Kill an OSD with loss: the objects placing chunks there degrade, with
	// correct surviving counts.
	osd, err := c.OSD(locs[2].OSD.ID)
	if err != nil {
		t.Fatal(err)
	}
	osd.Fail(true)
	deg := pool.DegradedObjects()
	if len(deg) == 0 {
		t.Fatal("no degraded objects after chunk loss")
	}
	for _, d := range deg {
		if d.Surviving+len(d.Missing) != 7 {
			t.Fatalf("object %s: %d surviving + %d missing != 7", d.Object, d.Surviving, len(d.Missing))
		}
		if d.Surviving >= 7 {
			t.Fatalf("object %s reported degraded with %d survivors", d.Object, d.Surviving)
		}
	}
}

func TestPlaceChunkReplacesAndOverrides(t *testing.T) {
	_, pool := healthTestCluster(t)
	putObjects(t, pool, 1, 4<<10)
	ctx := context.Background()

	locs, err := pool.ChunkLocations("obj-000")
	if err != nil {
		t.Fatal(err)
	}
	victim := locs[4].OSD
	victim.Fail(true)

	// Reconstruct chunk 4's payload from survivors and re-place it.
	var chunks []erasure.Chunk
	for _, loc := range locs {
		if loc.OSD == victim || len(chunks) == 4 {
			continue
		}
		data, err := pool.GetChunk(ctx, "obj-000", loc.Chunk)
		if err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, erasure.Chunk{Index: loc.Chunk, Data: data})
	}
	dataChunks, err := pool.Code().Reconstruct(chunks)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := pool.Code().ChunkAt(4, dataChunks)
	if err != nil {
		t.Fatal(err)
	}
	target, err := pool.PlaceChunk(ctx, "obj-000", 4, payload)
	if err != nil {
		t.Fatal(err)
	}
	if target == victim {
		t.Fatal("PlaceChunk chose the down OSD")
	}
	// The override must route reads to the new home, and the new placement
	// must keep one chunk per OSD.
	got, err := pool.GetChunk(ctx, "obj-000", 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatal("re-placed chunk corrupted")
	}
	locs, err = pool.ChunkLocations("obj-000")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, loc := range locs {
		if seen[loc.OSD.ID] {
			t.Fatalf("two chunks on OSD %d after re-placement", loc.OSD.ID)
		}
		seen[loc.OSD.ID] = true
	}
	if deg := pool.DegradedObjects(); len(deg) != 0 {
		t.Fatalf("object still degraded after repair: %+v", deg)
	}
	// ClusterView reflects the override and still validates (distinct
	// placement per file).
	view, err := pool.ClusterView(nil)
	if err != nil {
		t.Fatal(err)
	}
	if view.Files[0].Placement[4] != target.ID {
		t.Fatalf("ClusterView placement[4] = %d, want %d", view.Files[0].Placement[4], target.ID)
	}
}

func TestClusterViewMatchesPool(t *testing.T) {
	c, pool := healthTestCluster(t)
	putObjects(t, pool, 5, 4<<10)
	lambdas := []float64{1, 2, 3, 4, 5}
	view, err := pool.ClusterView(lambdas)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Nodes) != len(c.OSDs()) {
		t.Fatalf("%d nodes for %d OSDs", len(view.Nodes), len(c.OSDs()))
	}
	if len(view.Files) != 5 {
		t.Fatalf("%d files for 5 objects", len(view.Files))
	}
	for i, f := range view.Files {
		if f.Lambda != lambdas[i] {
			t.Fatalf("file %d lambda %v, want %v", i, f.Lambda, lambdas[i])
		}
		locs, err := pool.ChunkLocations(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		for cidx, nodeID := range f.Placement {
			if locs[cidx].OSD.ID != nodeID {
				t.Fatalf("file %d chunk %d: view says OSD %d, pool says %d",
					i, cidx, nodeID, locs[cidx].OSD.ID)
			}
		}
	}
	if _, err := pool.ClusterView([]float64{1}); err == nil {
		t.Fatal("ClusterView accepted mismatched lambda count")
	}
}

func TestPoolDeleteChunk(t *testing.T) {
	_, pool := healthTestCluster(t)
	putObjects(t, pool, 1, 4<<10)
	ctx := context.Background()
	if err := pool.DeleteChunk("obj-000", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.GetChunk(ctx, "obj-000", 1); !errors.Is(err, ErrChunkMissing) {
		t.Fatalf("GetChunk after delete: %v", err)
	}
	if err := pool.DeleteChunk("missing", 0); !errors.Is(err, ErrObjectNotFound) {
		t.Fatalf("DeleteChunk unknown object: %v", err)
	}
	if err := pool.DeleteChunk("obj-000", 99); !errors.Is(err, ErrChunkMissing) {
		t.Fatalf("DeleteChunk bad index: %v", err)
	}
}
