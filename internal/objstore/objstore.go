// Package objstore is an in-process emulation of the Ceph object-store
// deployment the paper prototypes on: OSDs with configurable service-time
// behaviour, erasure-coded pools with CRUSH-like pseudo-random placement
// over placement groups, a primary-OSD write path that encodes objects into
// chunks, a read path that collects any k chunks, and an optional LRU
// write-back cache tier (the paper's baseline). A set of "equivalent code"
// pools, (n, k-d) for d = 0..k, implements the functional-caching evaluation
// methodology of Section V-C.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sprout/internal/erasure"
	"sprout/internal/queue"
)

// Common errors.
var (
	ErrObjectNotFound = errors.New("objstore: object not found")
	ErrPoolNotFound   = errors.New("objstore: pool not found")
	ErrChunkMissing   = errors.New("objstore: chunk missing")
	ErrNotEnoughOSDs  = errors.New("objstore: not enough OSDs for pool")
	ErrBadPoolParams  = errors.New("objstore: invalid pool parameters")
	ErrOSDDown        = errors.New("objstore: osd down")
	ErrNoRepairTarget = errors.New("objstore: no live OSD available for repair placement")
	ErrNoStagedPut    = errors.New("objstore: no staged put for object version")
	ErrStagedStripe   = errors.New("objstore: staged stripe incomplete or inconsistent")
)

// OSD is one object storage daemon. Chunk reads and writes are serialised
// through a per-OSD queue (mutex) and take a simulated service time drawn
// from the configured distribution, scaled by the chunk size, so queueing
// behaviour resembles the paper's testbed.
//
// An OSD has a lifecycle: it serves while Up or Recovering and fast-fails
// every chunk operation with ErrOSDDown while Down (the node is
// unreachable, so no service time is consumed). Fail and Recover drive the
// transitions; health counters (errors, consecutive errors, lost chunks)
// feed the repair plane's failure detector.
type OSD struct {
	ID int

	// svcMu serialises chunk reads/writes through the simulated service
	// times (the FIFO disk queue). dataMu guards only the chunk map, so
	// metadata operations (HasChunk, DeleteChunk, NumChunks — used by the
	// repair plane's degradation scans) never wait behind service sleeps.
	svcMu  sync.Mutex
	dataMu sync.Mutex
	chunks map[string][]byte // key: object/pool/chunk identifier

	service queue.Dist // service time for a reference-sized chunk (seconds)
	refSize int64      // reference chunk size in bytes for scaling
	rng     *rand.Rand
	rngMu   sync.Mutex

	state      atomic.Int32 // NodeState
	errors     atomic.Int64
	consecErrs atomic.Int64
	lostChunks atomic.Int64

	served atomic.Int64
	busyNS atomic.Int64
}

// NewOSD creates an OSD with the given per-chunk service-time distribution
// calibrated for refSize-byte chunks.
func NewOSD(id int, service queue.Dist, refSize int64, seed int64) *OSD {
	return &OSD{
		ID:      id,
		chunks:  make(map[string][]byte),
		service: service,
		refSize: refSize,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

func (o *OSD) sampleService(size int64) time.Duration {
	o.rngMu.Lock()
	s := o.service.Sample(o.rng)
	o.rngMu.Unlock()
	if o.refSize > 0 && size > 0 {
		s *= float64(size) / float64(o.refSize)
	}
	return time.Duration(s * float64(time.Second))
}

// PutChunk stores a chunk, blocking for the simulated service time while
// holding the OSD busy (FIFO service through the service mutex).
func (o *OSD) PutChunk(ctx context.Context, key string, data []byte) error {
	if o.State() == StateDown {
		return o.observe(fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID))
	}
	delay := o.sampleService(int64(len(data)))
	o.svcMu.Lock()
	defer o.svcMu.Unlock()
	if err := sleepCtx(ctx, delay); err != nil {
		return o.observe(err)
	}
	cp := append([]byte(nil), data...)
	o.dataMu.Lock()
	o.chunks[key] = cp
	o.dataMu.Unlock()
	o.served.Add(1)
	o.busyNS.Add(int64(delay))
	return o.observe(nil)
}

// GetChunk retrieves a chunk, blocking for the simulated service time while
// holding the OSD busy (FIFO service through the service mutex).
func (o *OSD) GetChunk(ctx context.Context, key string) ([]byte, error) {
	if o.State() == StateDown {
		return nil, o.observe(fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID))
	}
	o.svcMu.Lock()
	defer o.svcMu.Unlock()
	o.dataMu.Lock()
	data, ok := o.chunks[key]
	o.dataMu.Unlock()
	if !ok {
		return nil, o.observe(fmt.Errorf("%w: %s on osd %d", ErrChunkMissing, key, o.ID))
	}
	delay := o.sampleService(int64(len(data)))
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, o.observe(err)
	}
	o.served.Add(1)
	o.busyNS.Add(int64(delay))
	if err := o.observe(nil); err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// DeleteChunk removes a chunk without service delay (metadata operation).
// Deleting an absent chunk is a no-op; a Down OSD rejects the call.
func (o *OSD) DeleteChunk(key string) error {
	if o.State() == StateDown {
		return fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID)
	}
	o.dataMu.Lock()
	delete(o.chunks, key)
	o.dataMu.Unlock()
	return nil
}

// NumChunks returns how many chunks the OSD currently stores.
func (o *OSD) NumChunks() int {
	o.dataMu.Lock()
	defer o.dataMu.Unlock()
	return len(o.chunks)
}

// Service exposes the OSD's service-time distribution (used to export the
// emulated topology as a cluster description for the controller).
func (o *OSD) Service() queue.Dist { return o.service }

// HasChunk reports whether the OSD stores the chunk, without service delay
// and without waiting behind in-flight chunk operations.
func (o *OSD) HasChunk(key string) bool {
	o.dataMu.Lock()
	defer o.dataMu.Unlock()
	_, ok := o.chunks[key]
	return ok
}

// Stats returns the number of chunk operations served and the cumulative
// busy time.
func (o *OSD) Stats() (served int64, busy time.Duration) {
	return o.served.Load(), time.Duration(o.busyNS.Load())
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Pool is an erasure-coded pool: objects written to it are split into k data
// chunks, encoded to n chunks and spread over the pool's OSDs using a
// CRUSH-like placement over placement groups.
type Pool struct {
	Name            string
	N, K            int
	PlacementGroups int

	osds []*OSD
	code *erasure.Code
	// pgOSDs is the precomputed CRUSH-like placement, indexed by placement
	// group: recomputing the seeded permutation per request would dominate
	// the serving path. Entries are read-only after construction.
	pgOSDs [][]*OSD

	mu      sync.RWMutex
	objects map[string]objectMeta
	// overrides remaps individual chunks (keyed by chunkKey) away from their
	// CRUSH position: the repair plane and the staged write path re-place
	// chunks whose CRUSH home is Down onto live OSDs and record the new home
	// here.
	overrides map[string]*OSD
	// staged holds in-flight two-phase puts: chunks written under a new
	// version that no committed object metadata points at yet, so readers
	// cannot observe them until CommitObject flips the version.
	staged map[stagedKey]*stagedPut
	// prev defers garbage collection of superseded stripes by one commit:
	// when version v+1 commits, version v's chunks are parked here and only
	// deleted when v+2 commits (or ReapPrevious runs). Readers that pinned v
	// just before the flip can therefore still decode it — without the grace
	// stripe, a reader racing back-to-back overwrites could starve.
	prev map[string]prevStripe
	// pins counts readers currently decoding a stripe version; a pinned
	// stripe is never garbage collected — reaping moves it to zombies and
	// the last unpin deletes its chunks. This is what makes Get wait-free
	// under continuous overwrites: the version a reader pins stays readable
	// for the whole read, no matter how many commits land meanwhile.
	// Pinning takes the exclusive pool lock for a map increment; measured
	// against the pre-pin RLock path this is within run-to-run noise even
	// at the transport bench's 64-client 4 KiB chunk-read saturation point
	// (~135k ops/s), so the simple map wins over sharded counters.
	pins    map[stagedKey]int
	zombies map[stagedKey]prevStripe
	// verSeq allocates unique, monotonically increasing stripe versions
	// across the pool.
	verSeq atomic.Uint64
	// commitHooks are called after every committed put with the object name:
	// the cluster registers LRU cache-tier invalidation, and co-located
	// Sprout controllers register functional-cache invalidation, so an
	// overwrite through any path never leaves stale cached bytes behind.
	commitHooks []func(object string)
}

type objectMeta struct {
	size    int
	pg      int
	version uint64
}

// NewPool creates an erasure-coded pool over the given OSDs. The number of
// placement groups follows the paper's eq. (17): OSDs*100/m rounded to the
// next power of two, unless overridden with pgs > 0.
func NewPool(name string, n, k int, osds []*OSD, pgs int) (*Pool, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("%w: (%d,%d)", ErrBadPoolParams, n, k)
	}
	if len(osds) < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnoughOSDs, n, len(osds))
	}
	code, err := erasure.New(n, k)
	if err != nil {
		return nil, err
	}
	if pgs <= 0 {
		m := n - k
		if m == 0 {
			m = 1
		}
		pgs = nextPowerOfTwo(len(osds) * 100 / m)
	}
	p := &Pool{
		Name:            name,
		N:               n,
		K:               k,
		PlacementGroups: pgs,
		osds:            osds,
		code:            code,
		pgOSDs:          make([][]*OSD, pgs),
		objects:         make(map[string]objectMeta),
		overrides:       make(map[string]*OSD),
		staged:          make(map[stagedKey]*stagedPut),
		prev:            make(map[string]prevStripe),
		pins:            make(map[stagedKey]int),
		zombies:         make(map[stagedKey]prevStripe),
	}
	for pg := range p.pgOSDs {
		perm := rand.New(rand.NewSource(int64(pg)*2654435761 + int64(len(osds)))).Perm(len(osds))
		mapped := make([]*OSD, n)
		for i := 0; i < n; i++ {
			mapped[i] = osds[perm[i]]
		}
		p.pgOSDs[pg] = mapped
	}
	return p, nil
}

func nextPowerOfTwo(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Code exposes the pool's erasure coder (used by the functional cache to
// generate coded cache chunks consistent with the stored chunks).
func (p *Pool) Code() *erasure.Code { return p.code }

// OnCommit registers a hook called with the object name after every
// committed put (initial ingest and overwrites alike). Cache layers register
// invalidation here so overwritten content can never be served stale. Hooks
// run outside the pool lock, after the version flip is visible.
func (p *Pool) OnCommit(hook func(object string)) {
	p.mu.Lock()
	p.commitHooks = append(p.commitHooks, hook)
	p.mu.Unlock()
}

// placementGroup hashes an object name onto a placement group.
func (p *Pool) placementGroup(object string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(object))
	_, _ = h.Write([]byte(p.Name))
	return int(h.Sum32()) % p.PlacementGroups
}

// osdsForPG maps a placement group to its ordered list of n distinct OSDs
// (the CRUSH-like pseudo-random but deterministic mapping, precomputed at
// pool creation). The returned slice is shared and must not be mutated.
func (p *Pool) osdsForPG(pg int) []*OSD {
	return p.pgOSDs[pg]
}

// chunkKey names one coded chunk of one stripe version of an object. The
// version is part of the key, so an overwrite staged under a new version
// never collides with the committed stripe and a reader holding a version
// can never assemble chunks from two different puts.
func (p *Pool) chunkKey(object string, version uint64, chunk int) string {
	return p.Name + "/" + object + "/v" + strconv.FormatUint(version, 10) + "/" + strconv.Itoa(chunk)
}

// osdForChunk resolves the OSD currently hosting a chunk of the given stripe
// version: an override (recorded by repair or by a staged write that dodged
// a Down OSD) if one exists, the CRUSH position otherwise.
func (p *Pool) osdForChunk(pg int, object string, version uint64, chunk int) *OSD {
	p.mu.RLock()
	osd, ok := p.overrides[p.chunkKey(object, version, chunk)]
	p.mu.RUnlock()
	if ok {
		return osd
	}
	return p.pgOSDs[pg][chunk]
}

// ChunkOSD reports the ID of the OSD currently hosting one coded chunk of
// the object's committed stripe — the same placement (repair and staging
// overrides included) the read path uses. The transport's chaos harness
// uses it to aim per-OSD faults at the requests that actually land there.
func (p *Pool) ChunkOSD(object string, chunk int) (int, error) {
	meta, ok := p.meta(object)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	if chunk < 0 || chunk >= p.N {
		return 0, fmt.Errorf("%w: %s chunk %d", ErrChunkMissing, object, chunk)
	}
	return p.osdForChunk(meta.pg, object, meta.version, chunk).ID, nil
}

// meta returns the committed metadata of an object.
func (p *Pool) meta(object string) (objectMeta, bool) {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	return meta, ok
}

// Put writes an object through the two-phase commit path: encode into n
// chunks, stage them under a fresh stripe version, and commit the version
// flip. A failed put aborts the staged chunks and is invisible to readers —
// the previously committed stripe (if any) remains fully intact.
func (p *Pool) Put(ctx context.Context, object string, data []byte) error {
	_, err := p.PutV(ctx, object, data)
	return err
}

// Get reads an object by collecting k chunks of its committed stripe version
// from the hosting OSDs (all n are contacted; the k fastest responses win,
// mirroring Ceph's read path for erasure-coded pools) and decoding. The
// version is pinned when the metadata is read: a concurrent overwrite can
// never contribute chunks to this read's stripe, and garbage collection
// defers deletion of the pinned stripe until the read finishes, so reads
// never starve under continuous overwrites. The retry loop remains for
// failure cases (a chunk lost to a Down OSD may exist again under the next
// committed version).
func (p *Pool) Get(ctx context.Context, object string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < versionRetries; attempt++ {
		meta, ok := p.pinMeta(object)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
		}
		data, err := p.getVersion(ctx, object, meta)
		p.unpin(object, meta.version)
		if err == nil {
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		if cur, ok := p.meta(object); !ok || cur.version == meta.version {
			return nil, err
		}
		// The stripe was replaced while we read it: retry the new version.
	}
	return nil, lastErr
}

// versionRetries bounds how often a read chases version flips before giving
// up; each retry only happens when an overwrite actually committed mid-read,
// and the one-stripe GC grace means a retry only becomes necessary when two
// commits land inside one read window.
const versionRetries = 6

// getVersion reads one pinned stripe version of an object.
func (p *Pool) getVersion(ctx context.Context, object string, meta objectMeta) ([]byte, error) {
	type resp struct {
		idx  int
		data []byte
		err  error
	}
	ch := make(chan resp, p.N)
	readCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < p.N; i++ {
		go func(i int, osd *OSD) {
			data, err := osd.GetChunk(readCtx, p.chunkKey(object, meta.version, i))
			ch <- resp{idx: i, data: data, err: err}
		}(i, p.osdForChunk(meta.pg, object, meta.version, i))
	}
	chunks := make([]erasure.Chunk, 0, p.K)
	var lastErr error
	for received := 0; received < p.N && len(chunks) < p.K; received++ {
		r := <-ch
		if r.err != nil {
			lastErr = r.err
			continue
		}
		chunks = append(chunks, erasure.Chunk{Index: r.idx, Data: r.data})
	}
	if len(chunks) < p.K {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("%w: object %s", ErrChunkMissing, object)
	}
	return p.code.Decode(chunks, meta.size)
}

// GetChunk reads one specific coded chunk of an object's committed stripe
// directly from its hosting OSD (used by Sprout's functional-cache read
// path).
func (p *Pool) GetChunk(ctx context.Context, object string, chunk int) ([]byte, error) {
	data, _, _, err := p.GetChunkV(ctx, object, chunk)
	return data, err
}

// GetChunkV reads one coded chunk and reports the stripe version and object
// size it belongs to, so callers assembling a stripe from several GetChunkV
// calls (the controller's read plane) can detect a concurrent overwrite
// instead of decoding a mixed-version stripe. A read that loses its pinned
// version to a concurrent commit retries against the new version.
func (p *Pool) GetChunkV(ctx context.Context, object string, chunk int) ([]byte, uint64, int, error) {
	var lastErr error
	for attempt := 0; attempt < versionRetries; attempt++ {
		meta, ok := p.pinMeta(object)
		if !ok {
			return nil, 0, 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
		}
		if chunk < 0 || chunk >= p.N {
			p.unpin(object, meta.version)
			return nil, 0, 0, fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
		}
		data, err := p.osdForChunk(meta.pg, object, meta.version, chunk).GetChunk(ctx, p.chunkKey(object, meta.version, chunk))
		p.unpin(object, meta.version)
		if err == nil {
			return data, meta.version, meta.size, nil
		}
		if ctx.Err() != nil {
			return nil, 0, 0, err
		}
		lastErr = err
		if cur, ok := p.meta(object); !ok || cur.version == meta.version {
			return nil, 0, 0, err
		}
	}
	return nil, 0, 0, lastErr
}

// DeleteChunk removes one coded chunk of the object's committed stripe from
// its hosting OSD (no service delay). Used by the repair plane's tests and
// by failure drills over the network.
func (p *Pool) DeleteChunk(object string, chunk int) error {
	meta, ok := p.meta(object)
	if !ok {
		return fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	if chunk < 0 || chunk >= p.N {
		return fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
	}
	return p.osdForChunk(meta.pg, object, meta.version, chunk).DeleteChunk(p.chunkKey(object, meta.version, chunk))
}

// Version returns the committed stripe version of an object.
func (p *Pool) Version(object string) (uint64, error) {
	meta, ok := p.meta(object)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	return meta.version, nil
}

// ObjectSize returns the stored size of an object.
func (p *Pool) ObjectSize(object string) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	meta, ok := p.objects[object]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	return meta.size, nil
}

// Objects returns the names of all objects in the pool, sorted.
func (p *Pool) Objects() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.objects))
	for name := range p.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OSDs returns the pool's OSD set.
func (p *Pool) OSDs() []*OSD { return p.osds }

// CoderStats returns a snapshot of the pool's erasure-coding data-plane
// counters (operations, payload bytes, decode-plan cache hits/misses,
// striped vs serial operations).
func (p *Pool) CoderStats() erasure.CoderStats { return p.code.Stats() }
