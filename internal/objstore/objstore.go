// Package objstore is an in-process emulation of the Ceph object-store
// deployment the paper prototypes on: OSDs with configurable service-time
// behaviour, erasure-coded pools with CRUSH-like pseudo-random placement
// over placement groups, a primary-OSD write path that encodes objects into
// chunks, a read path that collects any k chunks, and an optional LRU
// write-back cache tier (the paper's baseline). A set of "equivalent code"
// pools, (n, k-d) for d = 0..k, implements the functional-caching evaluation
// methodology of Section V-C.
package objstore

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sprout/internal/erasure"
	"sprout/internal/queue"
)

// Common errors.
var (
	ErrObjectNotFound = errors.New("objstore: object not found")
	ErrPoolNotFound   = errors.New("objstore: pool not found")
	ErrChunkMissing   = errors.New("objstore: chunk missing")
	ErrNotEnoughOSDs  = errors.New("objstore: not enough OSDs for pool")
	ErrBadPoolParams  = errors.New("objstore: invalid pool parameters")
	ErrOSDDown        = errors.New("objstore: osd down")
	ErrNoRepairTarget = errors.New("objstore: no live OSD available for repair placement")
)

// OSD is one object storage daemon. Chunk reads and writes are serialised
// through a per-OSD queue (mutex) and take a simulated service time drawn
// from the configured distribution, scaled by the chunk size, so queueing
// behaviour resembles the paper's testbed.
//
// An OSD has a lifecycle: it serves while Up or Recovering and fast-fails
// every chunk operation with ErrOSDDown while Down (the node is
// unreachable, so no service time is consumed). Fail and Recover drive the
// transitions; health counters (errors, consecutive errors, lost chunks)
// feed the repair plane's failure detector.
type OSD struct {
	ID int

	// svcMu serialises chunk reads/writes through the simulated service
	// times (the FIFO disk queue). dataMu guards only the chunk map, so
	// metadata operations (HasChunk, DeleteChunk, NumChunks — used by the
	// repair plane's degradation scans) never wait behind service sleeps.
	svcMu  sync.Mutex
	dataMu sync.Mutex
	chunks map[string][]byte // key: object/pool/chunk identifier

	service queue.Dist // service time for a reference-sized chunk (seconds)
	refSize int64      // reference chunk size in bytes for scaling
	rng     *rand.Rand
	rngMu   sync.Mutex

	state      atomic.Int32 // NodeState
	errors     atomic.Int64
	consecErrs atomic.Int64
	lostChunks atomic.Int64

	served atomic.Int64
	busyNS atomic.Int64
}

// NewOSD creates an OSD with the given per-chunk service-time distribution
// calibrated for refSize-byte chunks.
func NewOSD(id int, service queue.Dist, refSize int64, seed int64) *OSD {
	return &OSD{
		ID:      id,
		chunks:  make(map[string][]byte),
		service: service,
		refSize: refSize,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

func (o *OSD) sampleService(size int64) time.Duration {
	o.rngMu.Lock()
	s := o.service.Sample(o.rng)
	o.rngMu.Unlock()
	if o.refSize > 0 && size > 0 {
		s *= float64(size) / float64(o.refSize)
	}
	return time.Duration(s * float64(time.Second))
}

// PutChunk stores a chunk, blocking for the simulated service time while
// holding the OSD busy (FIFO service through the service mutex).
func (o *OSD) PutChunk(ctx context.Context, key string, data []byte) error {
	if o.State() == StateDown {
		return o.observe(fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID))
	}
	delay := o.sampleService(int64(len(data)))
	o.svcMu.Lock()
	defer o.svcMu.Unlock()
	if err := sleepCtx(ctx, delay); err != nil {
		return o.observe(err)
	}
	cp := append([]byte(nil), data...)
	o.dataMu.Lock()
	o.chunks[key] = cp
	o.dataMu.Unlock()
	o.served.Add(1)
	o.busyNS.Add(int64(delay))
	return o.observe(nil)
}

// GetChunk retrieves a chunk, blocking for the simulated service time while
// holding the OSD busy (FIFO service through the service mutex).
func (o *OSD) GetChunk(ctx context.Context, key string) ([]byte, error) {
	if o.State() == StateDown {
		return nil, o.observe(fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID))
	}
	o.svcMu.Lock()
	defer o.svcMu.Unlock()
	o.dataMu.Lock()
	data, ok := o.chunks[key]
	o.dataMu.Unlock()
	if !ok {
		return nil, o.observe(fmt.Errorf("%w: %s on osd %d", ErrChunkMissing, key, o.ID))
	}
	delay := o.sampleService(int64(len(data)))
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, o.observe(err)
	}
	o.served.Add(1)
	o.busyNS.Add(int64(delay))
	if err := o.observe(nil); err != nil {
		return nil, err
	}
	return append([]byte(nil), data...), nil
}

// DeleteChunk removes a chunk without service delay (metadata operation).
// Deleting an absent chunk is a no-op; a Down OSD rejects the call.
func (o *OSD) DeleteChunk(key string) error {
	if o.State() == StateDown {
		return fmt.Errorf("%w: osd %d", ErrOSDDown, o.ID)
	}
	o.dataMu.Lock()
	delete(o.chunks, key)
	o.dataMu.Unlock()
	return nil
}

// NumChunks returns how many chunks the OSD currently stores.
func (o *OSD) NumChunks() int {
	o.dataMu.Lock()
	defer o.dataMu.Unlock()
	return len(o.chunks)
}

// Service exposes the OSD's service-time distribution (used to export the
// emulated topology as a cluster description for the controller).
func (o *OSD) Service() queue.Dist { return o.service }

// HasChunk reports whether the OSD stores the chunk, without service delay
// and without waiting behind in-flight chunk operations.
func (o *OSD) HasChunk(key string) bool {
	o.dataMu.Lock()
	defer o.dataMu.Unlock()
	_, ok := o.chunks[key]
	return ok
}

// Stats returns the number of chunk operations served and the cumulative
// busy time.
func (o *OSD) Stats() (served int64, busy time.Duration) {
	return o.served.Load(), time.Duration(o.busyNS.Load())
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Pool is an erasure-coded pool: objects written to it are split into k data
// chunks, encoded to n chunks and spread over the pool's OSDs using a
// CRUSH-like placement over placement groups.
type Pool struct {
	Name            string
	N, K            int
	PlacementGroups int

	osds []*OSD
	code *erasure.Code
	// pgOSDs is the precomputed CRUSH-like placement, indexed by placement
	// group: recomputing the seeded permutation per request would dominate
	// the serving path. Entries are read-only after construction.
	pgOSDs [][]*OSD

	mu      sync.RWMutex
	objects map[string]objectMeta
	// overrides remaps individual chunks (keyed by chunkKey) away from their
	// CRUSH position: the repair plane re-places chunks reconstructed from a
	// Down OSD onto live OSDs and records the new home here.
	overrides map[string]*OSD
}

type objectMeta struct {
	size int
	pg   int
}

// NewPool creates an erasure-coded pool over the given OSDs. The number of
// placement groups follows the paper's eq. (17): OSDs*100/m rounded to the
// next power of two, unless overridden with pgs > 0.
func NewPool(name string, n, k int, osds []*OSD, pgs int) (*Pool, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("%w: (%d,%d)", ErrBadPoolParams, n, k)
	}
	if len(osds) < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnoughOSDs, n, len(osds))
	}
	code, err := erasure.New(n, k)
	if err != nil {
		return nil, err
	}
	if pgs <= 0 {
		m := n - k
		if m == 0 {
			m = 1
		}
		pgs = nextPowerOfTwo(len(osds) * 100 / m)
	}
	p := &Pool{
		Name:            name,
		N:               n,
		K:               k,
		PlacementGroups: pgs,
		osds:            osds,
		code:            code,
		pgOSDs:          make([][]*OSD, pgs),
		objects:         make(map[string]objectMeta),
		overrides:       make(map[string]*OSD),
	}
	for pg := range p.pgOSDs {
		perm := rand.New(rand.NewSource(int64(pg)*2654435761 + int64(len(osds)))).Perm(len(osds))
		mapped := make([]*OSD, n)
		for i := 0; i < n; i++ {
			mapped[i] = osds[perm[i]]
		}
		p.pgOSDs[pg] = mapped
	}
	return p, nil
}

func nextPowerOfTwo(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Code exposes the pool's erasure coder (used by the functional cache to
// generate coded cache chunks consistent with the stored chunks).
func (p *Pool) Code() *erasure.Code { return p.code }

// placementGroup hashes an object name onto a placement group.
func (p *Pool) placementGroup(object string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(object))
	_, _ = h.Write([]byte(p.Name))
	return int(h.Sum32()) % p.PlacementGroups
}

// osdsForPG maps a placement group to its ordered list of n distinct OSDs
// (the CRUSH-like pseudo-random but deterministic mapping, precomputed at
// pool creation). The returned slice is shared and must not be mutated.
func (p *Pool) osdsForPG(pg int) []*OSD {
	return p.pgOSDs[pg]
}

// chunkKey names a chunk of an object inside the pool.
func (p *Pool) chunkKey(object string, chunk int) string {
	return p.Name + "/" + object + "/" + strconv.Itoa(chunk)
}

// osdForChunk resolves the OSD currently hosting a chunk: a repair override
// if one exists, the CRUSH position otherwise.
func (p *Pool) osdForChunk(pg int, object string, chunk int) *OSD {
	p.mu.RLock()
	osd, ok := p.overrides[p.chunkKey(object, chunk)]
	p.mu.RUnlock()
	if ok {
		return osd
	}
	return p.pgOSDs[pg][chunk]
}

// Put writes an object: the primary OSD path encodes it into n chunks and
// stores one chunk per OSD of the object's placement group. If any chunk
// write fails, the chunks already written are best-effort deleted so a
// failed put never leaves orphans behind.
func (p *Pool) Put(ctx context.Context, object string, data []byte) error {
	dataChunks, err := p.code.Split(data)
	if err != nil {
		return err
	}
	storage, err := p.code.Encode(dataChunks)
	if err != nil {
		return err
	}
	pg := p.placementGroup(object)
	var wg sync.WaitGroup
	errs := make([]error, p.N)
	targets := make([]*OSD, p.N)
	for i := 0; i < p.N; i++ {
		targets[i] = p.osdForChunk(pg, object, i)
		wg.Add(1)
		go func(i int, osd *OSD) {
			defer wg.Done()
			errs[i] = osd.PutChunk(ctx, p.chunkKey(object, i), storage[i])
		}(i, targets[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Partial write: roll the successful chunks back (best effort).
			// A fresh put leaves nothing behind; a failed overwrite leaves
			// only old-version chunks, so reads either decode the previous
			// version consistently or fail outright — never a silent mix of
			// versions (and the repair plane can rebuild the deleted ones).
			for i, werr := range errs {
				if werr == nil {
					_ = targets[i].DeleteChunk(p.chunkKey(object, i))
				}
			}
			return err
		}
	}
	p.mu.Lock()
	p.objects[object] = objectMeta{size: len(data), pg: pg}
	p.mu.Unlock()
	return nil
}

// Get reads an object by collecting k chunks from the placement group's
// OSDs (all n are contacted; the k fastest responses win, mirroring Ceph's
// read path for erasure-coded pools) and decoding.
func (p *Pool) Get(ctx context.Context, object string) ([]byte, error) {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	type resp struct {
		idx  int
		data []byte
		err  error
	}
	ch := make(chan resp, p.N)
	readCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	for i := 0; i < p.N; i++ {
		go func(i int, osd *OSD) {
			data, err := osd.GetChunk(readCtx, p.chunkKey(object, i))
			ch <- resp{idx: i, data: data, err: err}
		}(i, p.osdForChunk(meta.pg, object, i))
	}
	chunks := make([]erasure.Chunk, 0, p.K)
	var lastErr error
	for received := 0; received < p.N && len(chunks) < p.K; received++ {
		r := <-ch
		if r.err != nil {
			lastErr = r.err
			continue
		}
		chunks = append(chunks, erasure.Chunk{Index: r.idx, Data: r.data})
	}
	if len(chunks) < p.K {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("%w: object %s", ErrChunkMissing, object)
	}
	return p.code.Decode(chunks, meta.size)
}

// GetChunk reads one specific coded chunk of an object directly from its
// hosting OSD (used by Sprout's functional-cache read path).
func (p *Pool) GetChunk(ctx context.Context, object string, chunk int) ([]byte, error) {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	if chunk < 0 || chunk >= p.N {
		return nil, fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
	}
	return p.osdForChunk(meta.pg, object, chunk).GetChunk(ctx, p.chunkKey(object, chunk))
}

// DeleteChunk removes one coded chunk of an object from its hosting OSD (no
// service delay). Used by the repair plane's tests and by failed-put
// cleanup over the network.
func (p *Pool) DeleteChunk(object string, chunk int) error {
	p.mu.RLock()
	meta, ok := p.objects[object]
	p.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	if chunk < 0 || chunk >= p.N {
		return fmt.Errorf("%w: chunk %d", ErrChunkMissing, chunk)
	}
	return p.osdForChunk(meta.pg, object, chunk).DeleteChunk(p.chunkKey(object, chunk))
}

// ObjectSize returns the stored size of an object.
func (p *Pool) ObjectSize(object string) (int, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	meta, ok := p.objects[object]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrObjectNotFound, object)
	}
	return meta.size, nil
}

// Objects returns the names of all objects in the pool, sorted.
func (p *Pool) Objects() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	names := make([]string, 0, len(p.objects))
	for name := range p.objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// OSDs returns the pool's OSD set.
func (p *Pool) OSDs() []*OSD { return p.osds }

// CoderStats returns a snapshot of the pool's erasure-coding data-plane
// counters (operations, payload bytes, decode-plan cache hits/misses,
// striped vs serial operations).
func (p *Pool) CoderStats() erasure.CoderStats { return p.code.Stats() }
