package shard

import (
	"fmt"
	"testing"
)

func ringWith(t *testing.T, vnodes int, ids ...string) *Ring {
	t.Helper()
	r := New(vnodes)
	for _, id := range ids {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func owners(t *testing.T, r *Ring, files int) []string {
	t.Helper()
	out := make([]string, files)
	for f := 0; f < files; f++ {
		id, ok := r.Owner(f)
		if !ok {
			t.Fatalf("file %d: no owner", f)
		}
		out[f] = id
	}
	return out
}

// TestBalance pins the quantitative balance bound from the issue: over 1k
// files at 4 shards the most-loaded shard holds at most 1.15x the files of
// the least-loaded one. The ring is deterministic, so this is a fixed
// property of the hash, not a flaky statistical test.
func TestBalance(t *testing.T) {
	const files = 1000
	r := ringWith(t, 0, "shard-0", "shard-1", "shard-2", "shard-3")
	load := map[string]int{}
	for _, id := range owners(t, r, files) {
		load[id]++
	}
	min, max := files, 0
	for _, id := range r.Members() {
		n := load[id]
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	t.Logf("load per shard: %v (max/min = %.3f)", load, float64(max)/float64(min))
	if min == 0 {
		t.Fatalf("a shard owns zero files: %v", load)
	}
	if ratio := float64(max) / float64(min); ratio > 1.15 {
		t.Fatalf("max/min load ratio %.3f > 1.15: %v", ratio, load)
	}
}

// TestMinimalMovementOnAdd checks that growing the ring only moves files
// onto the new shard — no file changes hands between surviving shards —
// and that the moved fraction is about 1/N (bounded here by the balance
// slack over the new shard's fair share).
func TestMinimalMovementOnAdd(t *testing.T) {
	files := 1000
	r := ringWith(t, 0, "shard-0", "shard-1", "shard-2", "shard-3")
	before := owners(t, r, files)
	if err := r.Add("shard-4"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, files)

	moved := 0
	for f := range before {
		if before[f] == after[f] {
			continue
		}
		moved++
		if after[f] != "shard-4" {
			t.Fatalf("file %d moved %s -> %s, not to the new shard", f, before[f], after[f])
		}
	}
	bound := int(1.15 * float64(files) / 5)
	t.Logf("moved %d/%d files to the new shard (bound %d)", moved, files, bound)
	if moved == 0 {
		t.Fatal("new shard received no files")
	}
	if moved > bound {
		t.Fatalf("add moved %d files, want <= %d (~1/N with balance slack)", moved, bound)
	}
}

// TestMinimalMovementOnRemove checks that shrinking the ring only moves the
// removed shard's files; everything else stays put.
func TestMinimalMovementOnRemove(t *testing.T) {
	files := 1000
	r := ringWith(t, 0, "shard-0", "shard-1", "shard-2", "shard-3")
	before := owners(t, r, files)
	if err := r.Remove("shard-2"); err != nil {
		t.Fatal(err)
	}
	after := owners(t, r, files)

	moved := 0
	for f := range before {
		switch {
		case before[f] == "shard-2":
			moved++
			if after[f] == "shard-2" {
				t.Fatalf("file %d still owned by removed shard", f)
			}
		case before[f] != after[f]:
			t.Fatalf("file %d moved %s -> %s though its owner stayed on the ring",
				f, before[f], after[f])
		}
	}
	bound := int(1.15 * float64(files) / 4)
	t.Logf("remove moved %d/%d files (bound %d)", moved, files, bound)
	if moved > bound {
		t.Fatalf("remove moved %d files, want <= %d (~1/N with balance slack)", moved, bound)
	}
}

// TestStableMappingAcrossInstances verifies that two rings built from the
// same membership — in different insertion orders — agree on every owner.
// That property lets each process route independently.
func TestStableMappingAcrossInstances(t *testing.T) {
	a := ringWith(t, 64, "alpha", "beta", "gamma")
	b := ringWith(t, 64, "gamma", "alpha", "beta")
	for f := 0; f < 500; f++ {
		oa, _ := a.Owner(f)
		ob, _ := b.Owner(f)
		if oa != ob {
			t.Fatalf("file %d: owner %q vs %q across instances", f, oa, ob)
		}
	}
}

func TestMembershipErrors(t *testing.T) {
	r := New(8)
	if _, ok := r.Owner(1); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if err := r.Add(""); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := r.Add("s0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("s0"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := r.Remove("nope"); err == nil {
		t.Fatal("removing unknown member accepted")
	}
	if v := r.Version(); v != 1 {
		t.Fatalf("version = %d after one add, want 1", v)
	}
	if err := r.Remove("s0"); err != nil {
		t.Fatal(err)
	}
	if v := r.Version(); v != 2 {
		t.Fatalf("version = %d after add+remove, want 2", v)
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("Len = %d, want 0", got)
	}
}

func TestSingleMemberOwnsAll(t *testing.T) {
	r := ringWith(t, 16, "only")
	for f := 0; f < 64; f++ {
		if id, ok := r.Owner(f); !ok || id != "only" {
			t.Fatalf("file %d: owner %q ok=%v", f, id, ok)
		}
	}
}

func BenchmarkOwner(b *testing.B) {
	r := New(0)
	for i := 0; i < 8; i++ {
		if err := r.Add(fmt.Sprintf("shard-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Owner(i & 1023)
	}
}
