// Package shard maps the file namespace onto controller shards with a
// consistent-hash ring. Each shard contributes many virtual nodes (points)
// on a 64-bit ring; a file is owned by the shard whose point is the first
// at or clockwise of the file's hashed key. The mapping is a pure function
// of the membership set, so independent processes that agree on the member
// IDs agree on every file's owner without exchanging state, and a
// membership change moves only the keys that fall into the arcs gained or
// lost by the joining/leaving shard (≈ 1/N of the namespace).
package shard

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-shard point count used when a Ring is
// built with vnodes <= 0. More points smooth the arc distribution: at 256
// points per shard the max/min file-load ratio stays within ~15% for the
// shard counts Sprout targets (2–16).
const DefaultVirtualNodes = 256

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member int // index into ids
}

// Ring is a consistent-hash ring over shard IDs. It is safe for concurrent
// use: lookups take a read lock, membership changes a write lock.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	ids     []string // member IDs, sorted
	points  []point  // sorted by hash
	version uint64   // bumped on every membership change
}

// New builds an empty ring with the given number of virtual nodes per
// member (DefaultVirtualNodes if vnodes <= 0).
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes}
}

// Add inserts a member. Adding an existing ID is an error.
func (r *Ring) Add(id string) error {
	if id == "" {
		return fmt.Errorf("shard: empty member id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.ids {
		if have == id {
			return fmt.Errorf("shard: member %q already on the ring", id)
		}
	}
	r.ids = append(r.ids, id)
	sort.Strings(r.ids)
	r.rebuildLocked()
	r.version++
	return nil
}

// Remove deletes a member. Removing an unknown ID is an error.
func (r *Ring) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, have := range r.ids {
		if have == id {
			r.ids = append(r.ids[:i], r.ids[i+1:]...)
			r.rebuildLocked()
			r.version++
			return nil
		}
	}
	return fmt.Errorf("shard: member %q not on the ring", id)
}

// rebuildLocked recomputes the sorted point list from r.ids. Point hashes
// depend only on (member ID, vnode index), so a member's points land on
// identical positions in every process that knows its ID.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for m, id := range r.ids {
		base := fnv64a(id)
		for v := 0; v < r.vnodes; v++ {
			h := splitmix64(base + uint64(v)*0x9E3779B97F4A7C15)
			r.points = append(r.points, point{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Equal hashes are vanishingly rare; break the tie by ID so every
		// process orders the points identically.
		return r.ids[a.member] < r.ids[b.member]
	})
}

// Members returns the member IDs in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ids)
}

// Version returns the membership version: it increments on every Add or
// Remove, letting peers detect that their cached view of the ring is stale.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// Owner returns the shard that owns fileID, or false on an empty ring.
func (r *Ring) Owner(fileID int) (string, bool) {
	return r.OwnerKey(KeyForFile(fileID))
}

// OwnerKey returns the shard owning an arbitrary pre-hashed key.
func (r *Ring) OwnerKey(key uint64) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise of the top of the ring
	}
	return r.ids[r.points[i].member], true
}

// KeyForFile hashes a file ID onto the ring. Exposed so callers can
// precompute keys for hot lookups.
func KeyForFile(fileID int) uint64 {
	return splitmix64(uint64(fileID) + 0x9E3779B97F4A7C15)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality 64-bit mix with full avalanche, so consecutive file IDs
// scatter uniformly around the ring.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// fnv64a hashes a member ID (FNV-1a), seeding its virtual-node sequence.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
