//go:build !race

// Package racedetect reports whether the binary was built with the race
// detector. Tests use it to relax assertions the instrumentation breaks
// by design: sync.Pool drops a random fraction of Puts under race (so
// pool-hit identity and hit/miss counts do not hold), and
// testing.AllocsPerRun measures the instrumentation's own allocations.
package racedetect

// Enabled is true when the race detector is on.
const Enabled = false
