package cancel

import (
	"context"
	"testing"
	"time"

	"sprout/internal/racedetect"
)

func TestSetAndReset(t *testing.T) {
	var f Flag
	f.Reset()
	if f.IsSet() {
		t.Fatal("fresh flag reports set")
	}
	f.Set()
	if !f.IsSet() {
		t.Fatal("Set not observed")
	}
	f.Reset()
	if f.IsSet() {
		t.Fatal("Reset did not clear the flag")
	}
}

func TestBindBackgroundIsFree(t *testing.T) {
	var f Flag
	f.Reset()
	detach := Bind(context.Background(), &f)
	if f.IsSet() {
		t.Fatal("background bind set the flag")
	}
	if detach() {
		t.Fatal("no-op detach reported a stop")
	}
	if racedetect.Enabled {
		t.Skip("alloc counts are meaningless under the race detector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		d := Bind(context.Background(), &f)
		d()
	})
	if allocs != 0 {
		t.Fatalf("Bind(Background) allocates %.1f/op, want 0", allocs)
	}
}

func TestBindCancel(t *testing.T) {
	var f Flag
	f.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	detach := Bind(ctx, &f)
	defer detach()
	if f.IsSet() {
		t.Fatal("flag set before cancel")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !f.IsSet() {
		if time.Now().After(deadline) {
			t.Fatal("cancel never propagated to the flag")
		}
	}
}

func TestDetachPreventsCancel(t *testing.T) {
	var f Flag
	f.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	detach := Bind(ctx, &f)
	if !detach() {
		t.Fatal("detach before cancel returned false")
	}
	cancel()
	time.Sleep(10 * time.Millisecond)
	if f.IsSet() {
		t.Fatal("detached flag still canceled")
	}
}

// TestStaleCallbackIgnored models pooled reuse: a callback from the
// previous generation must not cancel the next request.
func TestStaleCallbackIgnored(t *testing.T) {
	var f Flag
	f.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	detach := Bind(ctx, &f)

	// Scratch recycled: new generation, new (non-cancelable) request.
	f.Reset()
	cancel() // previous request's context fires late
	time.Sleep(10 * time.Millisecond)
	if f.IsSet() {
		t.Fatal("stale generation's cancel leaked into the new request")
	}
	detach()
}

func TestAlreadyCanceledContext(t *testing.T) {
	var f Flag
	f.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	detach := Bind(ctx, &f)
	defer detach()
	deadline := time.Now().Add(5 * time.Second)
	for !f.IsSet() {
		if time.Now().After(deadline) {
			t.Fatal("pre-canceled context never set the flag")
		}
	}
}
