// Package cancel provides the atomic cancellation token the read fast
// path polls instead of calling ctx.Err() per chunk.
//
// context.Context stays at request boundaries — deadlines, hedging, and
// transport plumbing still speak context — but ctx.Err() costs an
// interface call plus a mutex-free-but-branchy done-channel check per
// call, and contexts cannot be pooled. A Flag is one atomic load, lives
// inline in pooled per-request scratch, and is rebound to the request's
// context exactly once via Bind. Binding costs nothing for contexts that
// can never be canceled (context.Background in benchmarks and internal
// loops), and one context.AfterFunc registration otherwise.
//
// Flags are generation-counted so pooled scratch can Reset and rebind
// without racing a late AfterFunc callback from the previous request: a
// stale callback records the old generation, which the new generation's
// IsSet never matches.
package cancel

import (
	"context"
	"sync/atomic"
)

// Flag is a pooled, resettable cancellation token. The zero value is
// unusable; call Reset once before first use (and between reuses).
type Flag struct {
	gen atomic.Uint64 // current generation, bumped by Reset
	set atomic.Uint64 // generation at which Set was called
}

// Reset arms the flag for a new request. Any Set racing in from the
// previous generation is ignored by IsSet from here on.
func (f *Flag) Reset() {
	f.gen.Add(1)
}

// Set cancels the current generation.
func (f *Flag) Set() {
	f.set.Store(f.gen.Load())
}

// IsSet reports whether the current generation has been canceled. This
// is the per-chunk fast-path check: two atomic loads, no branches on
// channel state, inlineable.
func (f *Flag) IsSet() bool {
	g := f.gen.Load()
	return g != 0 && f.set.Load() == g
}

// noopDetach is returned by Bind for contexts that can never be
// canceled, so the caller's deferred detach is allocation-free.
func noopDetach() bool { return false }

// Bind arms f to be Set when ctx is canceled and returns a detach
// function the caller must run before recycling f's scratch (detach
// semantics follow context.AfterFunc's stop). For a context with a nil
// Done channel — context.Background and values derived from it — Bind
// is free: no registration, shared no-op detach.
func Bind(ctx context.Context, f *Flag) (detach func() bool) {
	if ctx.Done() == nil {
		return noopDetach
	}
	g := f.gen.Load()
	return context.AfterFunc(ctx, func() {
		// Record the generation observed at bind time: if the scratch
		// was already recycled, this store is a stale generation that
		// the new owner's IsSet ignores.
		f.set.Store(g)
	})
}
