package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sprout/internal/queue"
)

func TestPaperConfigBuild(t *testing.T) {
	c, err := PaperConfig().Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 12 {
		t.Fatalf("nodes = %d, want 12", len(c.Nodes))
	}
	if len(c.Files) != 1000 {
		t.Fatalf("files = %d, want 1000", len(c.Files))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Aggregate arrival rate stated in the paper: ~0.1416/sec.
	total := c.TotalArrivalRate()
	if total < 0.14 || total > 0.145 {
		t.Fatalf("total arrival rate = %v, want ~0.1416", total)
	}
	// Every file uses a (7,4) code and 25 MB chunks.
	for _, f := range c.Files {
		if f.N != 7 || f.K != 4 {
			t.Fatalf("file %d has (%d,%d)", f.ID, f.N, f.K)
		}
		if f.ChunkSize() != PaperChunkSizeBytes {
			t.Fatalf("chunk size = %d", f.ChunkSize())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := PaperConfig()
	cfg.NumNodes = 0
	if _, err := cfg.Build(); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	cfg = PaperConfig()
	cfg.K = 0
	if _, err := cfg.Build(); err == nil {
		t.Fatal("expected error for k=0")
	}
	cfg = PaperConfig()
	cfg.N = 20 // more chunks than nodes
	if _, err := cfg.Build(); err == nil {
		t.Fatal("expected error for n > nodes")
	}
}

func TestValidateCatchesBadPlacement(t *testing.T) {
	node := Node{ID: 0, Service: queue.NewExponential(1)}
	base := File{ID: 0, SizeBytes: 100, K: 1, N: 1, Placement: []int{0}, Lambda: 1}

	c := &Cluster{Nodes: []Node{node}, Files: []File{base}}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cluster rejected: %v", err)
	}

	bad := base
	bad.Placement = []int{5}
	c = &Cluster{Nodes: []Node{node}, Files: []File{bad}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for unknown node in placement")
	}

	bad = base
	bad.Placement = []int{0, 0}
	bad.N = 2
	bad.K = 1
	c = &Cluster{Nodes: []Node{node, {ID: 1, Service: queue.NewExponential(1)}}, Files: []File{bad}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for duplicate placement")
	}

	bad = base
	bad.Lambda = -1
	c = &Cluster{Nodes: []Node{node}, Files: []File{bad}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for negative arrival rate")
	}

	bad = base
	bad.K = 3
	bad.N = 2
	c = &Cluster{Nodes: []Node{node}, Files: []File{bad}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for n < k")
	}

	c = &Cluster{Nodes: []Node{node}, Files: nil}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for no files")
	}
	c = &Cluster{Nodes: nil, Files: []File{base}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for no nodes")
	}
	c = &Cluster{Nodes: []Node{{ID: 0}}, Files: []File{base}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for missing service distribution")
	}
	c = &Cluster{Nodes: []Node{node, {ID: 0, Service: queue.NewExponential(1)}}, Files: []File{base}}
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for duplicate node IDs")
	}
}

func TestRandomPlacementDistinct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		placement, err := RandomPlacement(rng, 12, 7)
		if err != nil {
			return false
		}
		if len(placement) != 7 {
			return false
		}
		seen := make(map[int]bool)
		for _, p := range placement {
			if p < 0 || p >= 12 || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPlacementTooMany(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomPlacement(rng, 3, 5); err == nil {
		t.Fatal("expected error when n > numNodes")
	}
}

func TestNodeStatsAndIndex(t *testing.T) {
	c, err := PaperConfig().Build()
	if err != nil {
		t.Fatal(err)
	}
	stats := c.NodeStats()
	if len(stats) != 12 {
		t.Fatalf("stats len = %d", len(stats))
	}
	// Node 0 has rate 0.1 -> mean 10s.
	if stats[0].Mu != 0.1 {
		t.Fatalf("node 0 mu = %v", stats[0].Mu)
	}
	idx := c.NodeIndex()
	for i, n := range c.Nodes {
		if idx[n.ID] != i {
			t.Fatalf("index mismatch for node %d", n.ID)
		}
	}
}

func TestLambdasAndWithArrivalRates(t *testing.T) {
	cfg := PaperConfig()
	cfg.NumFiles = 10
	c, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := c.Lambdas()
	if len(l) != 10 {
		t.Fatalf("lambdas len = %d", len(l))
	}
	newRates := make([]float64, 10)
	for i := range newRates {
		newRates[i] = 0.5
	}
	c2, err := c.WithArrivalRates(newRates)
	if err != nil {
		t.Fatal(err)
	}
	if c2.TotalArrivalRate() != 5 {
		t.Fatalf("total = %v", c2.TotalArrivalRate())
	}
	// Original unchanged.
	if c.Files[0].Lambda == 0.5 {
		t.Fatal("WithArrivalRates mutated the original cluster")
	}
	if _, err := c.WithArrivalRates(newRates[:3]); err == nil {
		t.Fatal("expected error for wrong length")
	}
	newRates[0] = -1
	if _, err := c.WithArrivalRates(newRates); err == nil {
		t.Fatal("expected error for negative rate")
	}
}

func TestChunkSize(t *testing.T) {
	f := File{SizeBytes: 100, K: 4}
	if f.ChunkSize() != 25 {
		t.Fatalf("chunk size = %d", f.ChunkSize())
	}
	f = File{SizeBytes: 101, K: 4}
	if f.ChunkSize() != 26 {
		t.Fatalf("chunk size = %d", f.ChunkSize())
	}
	f = File{SizeBytes: 100, K: 0}
	if f.ChunkSize() != 0 {
		t.Fatalf("chunk size with k=0 should be 0")
	}
}

func TestPaperServiceRatesLength(t *testing.T) {
	if len(PaperServiceRates) != 12 {
		t.Fatalf("expected 12 service rates, got %d", len(PaperServiceRates))
	}
}
