// Package cluster models the storage-cluster configuration the optimizer and
// simulator operate on: a set of heterogeneous storage nodes with
// service-time distributions, a set of erasure-coded files with arrival
// rates, and the placement of each file's chunks on nodes.
//
// It also bakes in the exact configuration used in the paper's numerical
// section: 12 storage servers with the published service rates, r = 1000
// files of 100 MB using a (7,4) code, and the five-way arrival-rate split.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"sprout/internal/queue"
)

// Node is a single storage server.
type Node struct {
	ID      int
	Name    string
	Service queue.Dist
}

// Stats returns the service-time statistics of the node.
func (n Node) Stats() queue.NodeStats { return queue.StatsFromDist(n.Service) }

// File is one erasure-coded file stored in the cluster.
type File struct {
	ID        int
	Name      string
	SizeBytes int64
	K         int   // data chunks needed to reconstruct
	N         int   // coded chunks placed on storage nodes
	Placement []int // node IDs hosting the N chunks, len == N, all distinct
	Lambda    float64
}

// ChunkSize returns the size of each chunk in bytes (ceil(size/k)).
func (f File) ChunkSize() int64 {
	if f.K == 0 {
		return 0
	}
	return (f.SizeBytes + int64(f.K) - 1) / int64(f.K)
}

// Cluster bundles nodes and files.
type Cluster struct {
	Nodes []Node
	Files []File
}

// Validation errors.
var (
	ErrNoNodes          = errors.New("cluster: no storage nodes")
	ErrNoFiles          = errors.New("cluster: no files")
	ErrBadPlacement     = errors.New("cluster: invalid placement")
	ErrBadCode          = errors.New("cluster: invalid erasure-code parameters")
	ErrNegativeArrival  = errors.New("cluster: negative arrival rate")
	ErrNotEnoughNodes   = errors.New("cluster: fewer nodes than chunks to place")
	ErrMissingService   = errors.New("cluster: node missing service distribution")
	ErrDuplicateNodeIDs = errors.New("cluster: duplicate node IDs")
)

// Validate checks structural consistency of the cluster description.
func (c *Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return ErrNoNodes
	}
	if len(c.Files) == 0 {
		return ErrNoFiles
	}
	ids := make(map[int]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.Service == nil {
			return fmt.Errorf("%w: node %d", ErrMissingService, n.ID)
		}
		if ids[n.ID] {
			return fmt.Errorf("%w: id %d", ErrDuplicateNodeIDs, n.ID)
		}
		ids[n.ID] = true
	}
	for _, f := range c.Files {
		if f.K < 1 || f.N < f.K {
			return fmt.Errorf("%w: file %d has (n=%d, k=%d)", ErrBadCode, f.ID, f.N, f.K)
		}
		if f.Lambda < 0 {
			return fmt.Errorf("%w: file %d", ErrNegativeArrival, f.ID)
		}
		if len(f.Placement) != f.N {
			return fmt.Errorf("%w: file %d placement has %d entries, want %d", ErrBadPlacement, f.ID, len(f.Placement), f.N)
		}
		seen := make(map[int]bool, f.N)
		for _, nodeID := range f.Placement {
			if !ids[nodeID] {
				return fmt.Errorf("%w: file %d references unknown node %d", ErrBadPlacement, f.ID, nodeID)
			}
			if seen[nodeID] {
				return fmt.Errorf("%w: file %d places two chunks on node %d", ErrBadPlacement, f.ID, nodeID)
			}
			seen[nodeID] = true
		}
	}
	return nil
}

// NodeStats returns the service statistics of every node, indexed by slice
// position (not node ID).
func (c *Cluster) NodeStats() []queue.NodeStats {
	stats := make([]queue.NodeStats, len(c.Nodes))
	for i, n := range c.Nodes {
		stats[i] = n.Stats()
	}
	return stats
}

// NodeIndex maps node IDs to their position in the Nodes slice.
func (c *Cluster) NodeIndex() map[int]int {
	idx := make(map[int]int, len(c.Nodes))
	for i, n := range c.Nodes {
		idx[n.ID] = i
	}
	return idx
}

// Lambdas returns the per-file request arrival rates in file order.
func (c *Cluster) Lambdas() []float64 {
	l := make([]float64, len(c.Files))
	for i, f := range c.Files {
		l[i] = f.Lambda
	}
	return l
}

// TotalArrivalRate returns the aggregate file request rate.
func (c *Cluster) TotalArrivalRate() float64 {
	var sum float64
	for _, f := range c.Files {
		sum += f.Lambda
	}
	return sum
}

// RandomPlacement selects n distinct nodes uniformly at random for a file.
func RandomPlacement(rng *rand.Rand, numNodes, n int) ([]int, error) {
	if n > numNodes {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnoughNodes, n, numNodes)
	}
	perm := rng.Perm(numNodes)
	placement := append([]int(nil), perm[:n]...)
	return placement, nil
}

// PaperServiceRates are the inverse mean service times of the 12 storage
// servers used throughout the paper's numerical section. The published list
// contains 11 values for 12 servers; we follow the pattern of the pairs and
// repeat the first rate for the first two servers, giving 12 entries with
// the same multiset of rates the figures were produced with.
var PaperServiceRates = []float64{
	0.1, 0.1, 0.1, 0.1, 0.0909, 0.0909, 0.0667, 0.0667, 0.0769, 0.0769, 0.0588, 0.0588,
}

// PaperArrivalRates is the repeating five-way arrival-rate pattern assigned
// to groups of files (requests/sec).
var PaperArrivalRates = []float64{0.000156, 0.000156, 0.000125, 0.000167, 0.000104}

// PaperFileSizeBytes is the 100 MB file size used in the simulations.
const PaperFileSizeBytes = 100 * 1024 * 1024

// PaperChunkSizeBytes is the resulting 25 MB chunk size for the (7,4) code.
const PaperChunkSizeBytes = PaperFileSizeBytes / 4

// Config controls construction of a synthetic cluster.
type Config struct {
	NumNodes     int
	NumFiles     int
	N, K         int
	FileSize     int64
	ServiceRates []float64 // one per node; exponential service with this rate
	ArrivalRates []float64 // repeating pattern over files
	Seed         int64
}

// PaperConfig returns the configuration of the paper's main simulation:
// 12 servers, 1000 files, (7,4) code, 100 MB files.
func PaperConfig() Config {
	return Config{
		NumNodes:     12,
		NumFiles:     1000,
		N:            7,
		K:            4,
		FileSize:     PaperFileSizeBytes,
		ServiceRates: PaperServiceRates,
		ArrivalRates: PaperArrivalRates,
		Seed:         1,
	}
}

// Build creates a cluster from the configuration, using exponential service
// times with the configured rates and random chunk placement.
func (cfg Config) Build() (*Cluster, error) {
	if cfg.NumNodes <= 0 || cfg.NumFiles <= 0 {
		return nil, fmt.Errorf("cluster: config needs positive node and file counts")
	}
	if cfg.N < cfg.K || cfg.K < 1 {
		return nil, fmt.Errorf("%w: (n=%d,k=%d)", ErrBadCode, cfg.N, cfg.K)
	}
	if cfg.N > cfg.NumNodes {
		return nil, fmt.Errorf("%w: n=%d nodes=%d", ErrNotEnoughNodes, cfg.N, cfg.NumNodes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes := make([]Node, cfg.NumNodes)
	for i := range nodes {
		rate := 0.1
		if len(cfg.ServiceRates) > 0 {
			rate = cfg.ServiceRates[i%len(cfg.ServiceRates)]
		}
		nodes[i] = Node{ID: i, Name: fmt.Sprintf("osd-%d", i), Service: queue.NewExponential(rate)}
	}
	files := make([]File, cfg.NumFiles)
	for i := range files {
		lambda := 0.0001
		if len(cfg.ArrivalRates) > 0 {
			lambda = cfg.ArrivalRates[i%len(cfg.ArrivalRates)]
		}
		placement, err := RandomPlacement(rng, cfg.NumNodes, cfg.N)
		if err != nil {
			return nil, err
		}
		files[i] = File{
			ID:        i,
			Name:      fmt.Sprintf("file-%04d", i),
			SizeBytes: cfg.FileSize,
			K:         cfg.K,
			N:         cfg.N,
			Placement: placement,
			Lambda:    lambda,
		}
	}
	c := &Cluster{Nodes: nodes, Files: files}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// WithArrivalRates returns a copy of the cluster with per-file arrival rates
// replaced by the given slice (len must equal the number of files). Used to
// advance between time bins without rebuilding placement.
func (c *Cluster) WithArrivalRates(lambdas []float64) (*Cluster, error) {
	if len(lambdas) != len(c.Files) {
		return nil, fmt.Errorf("cluster: %d rates for %d files", len(lambdas), len(c.Files))
	}
	out := &Cluster{Nodes: c.Nodes, Files: append([]File(nil), c.Files...)}
	for i := range out.Files {
		if lambdas[i] < 0 {
			return nil, ErrNegativeArrival
		}
		out.Files[i].Lambda = lambdas[i]
	}
	return out, nil
}
