package e2e

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sprout/internal/core"
	"sprout/internal/metrics"
	"sprout/internal/obs"
	"sprout/internal/transport"
)

// TestMetricsEndpoint serves the bridged registry over HTTP — the same wiring
// as sproutstore -metrics — and scrapes it repeatedly while concurrent
// readers, an OSD failure, and the repair plane churn the stack underneath.
// Every scrape must parse under the strict exposition parser, pass the
// conformance lint, and show monotonically increasing read counters.
func TestMetricsEndpoint(t *testing.T) {
	h, client := newHarnessWith(t, core.ServeOptions{
		Analyzer:  &core.AnalyzerConfig{},
		Autoscale: &core.AutoscaleConfig{},
	},
		transport.ServerConfig{StagedPutTTL: time.Minute},
		transport.ClientConfig{Conns: 3})
	reg := obs.NewRegistry(obs.Sources{
		Controller:      h.ctrl,
		TransportClient: client.Stats,
		Repair:          h.repair.Stats,
		OSDHealth:       h.cluster.Health,
	})
	if issues := metrics.Lint(reg); len(issues) != 0 {
		t.Fatalf("live registry fails conformance:\n  %s", strings.Join(issues, "\n  "))
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	readErrs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 51))
			for {
				select {
				case <-stop:
					return
				default:
				}
				fileID := rng.Intn(e2eObjects)
				if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
					readErrs[w] = err
					return
				}
			}
		}(w)
	}

	scrape := func() map[string]*metrics.ParsedFamily {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: %s", resp.Status)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type = %q, want text/plain exposition", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fams, err := metrics.ParseText(strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("mid-load scrape failed strict parse: %v", err)
		}
		return fams
	}
	readsTotal := func(fams map[string]*metrics.ParsedFamily) float64 {
		fam := fams["sprout_reads_total"]
		if fam == nil {
			t.Fatal("scrape missing sprout_reads_total")
		}
		return fam.Samples[0].Value
	}

	// Scrape while the stack is healthy, then again after an OSD failure with
	// repair running — degraded reads and membership churn must not corrupt
	// the exposition.
	var prev float64
	for round := 0; round < 3; round++ {
		if round == 1 {
			h.fail(t, 2)
		}
		time.Sleep(50 * time.Millisecond)
		fams := scrape()
		for _, fam := range []string{
			"sprout_reads_total",
			"sprout_read_latency_seconds",
			"sprout_cache_used_chunks",
			"sprout_transport_requests_total",
			"sprout_repair_scans_total",
			"sprout_osd_state_info",
		} {
			if fams[fam] == nil {
				t.Errorf("round %d: scrape missing family %s", round, fam)
			}
		}
		got := readsTotal(fams)
		if got <= prev {
			t.Errorf("round %d: sprout_reads_total = %v, want > %v (load is running)", round, got, prev)
		}
		prev = got
		if round >= 1 {
			states := map[string]string{}
			for _, s := range fams["sprout_osd_state_info"].Samples {
				states[s.Labels["osd"]] = s.Labels["state"]
			}
			if states["2"] == "up" {
				t.Errorf("round %d: OSD 2 still exported as up after failure", round)
			}
		}
	}
	close(stop)
	wg.Wait()
	for w, err := range readErrs {
		if err != nil {
			t.Errorf("reader %d: %v", w, err)
		}
	}
}
