package e2e

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprout/internal/core"
	"sprout/internal/resilience"
	"sprout/internal/transport"
)

// All chaos scenarios run under `go test -run TestChaos ./internal/e2e`
// (the CI chaos job). They wire the full stack with the transport chaos
// harness attached and assert — loosely, with generous slack, because they
// share CI machines — the resilience-plane acceptance behaviour: bounded
// tail latency next to a slow node, zero read errors next to a flaky node,
// availability across an asymmetric partition during repair, and graceful
// shed-and-recover under overload.

// quantileDur returns the q-quantile of the samples (q in [0,1]).
func quantileDur(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// readRounds reads every file `rounds` times through the controller,
// returning per-read latencies; any read error fails the test.
func readRounds(t *testing.T, h *harness, rounds int) []time.Duration {
	t.Helper()
	ctx := context.Background()
	durs := make([]time.Duration, 0, rounds*e2eObjects)
	for r := 0; r < rounds; r++ {
		for fileID := 0; fileID < e2eObjects; fileID++ {
			start := time.Now()
			if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			durs = append(durs, time.Since(start))
		}
	}
	return durs
}

// TestChaosSlowNode injects 10×-baseline latency into one OSD. With
// latency-aware breakers and hedging on, the read plane must learn to avoid
// it: after the breaker opens, read p99 stays within 2× the healthy
// baseline (plus scheduling slack) and no read errors occur.
func TestChaosSlowNode(t *testing.T) {
	chaos := transport.NewChaos(7)
	// HedgeDelay must exceed LatencyThreshold: a fetch through the slow node
	// loses to the hedge and is cancelled at roughly the hedge delay, and
	// only an already-overdue cancel registers as a slow observation.
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{
		ErrorThreshold: 3,
		// Wide enough that benign scheduling noise (race detector, shared CI
		// cores) cannot trip healthy nodes, while the 30ms fault still does.
		LatencyThreshold: 10 * time.Millisecond,
		OpenFor:          time.Minute, // no half-open probes during measurement
	})
	h, _ := newHarnessWith(t,
		core.ServeOptions{HedgeDelay: 12 * time.Millisecond, HedgeExtra: 2, Breakers: breakers},
		transport.ServerConfig{StagedPutTTL: time.Minute, Chaos: chaos},
		transport.ClientConfig{Conns: 3})

	// The plan concentrates fetches on a fixed subset of OSDs (cache serves
	// the rest), so slowing an arbitrary OSD may perturb nothing. Probe with
	// a harmless 1µs rule to find an OSD that actually takes fetch traffic.
	slow := -1
	for osd := 0; osd < e2eOSDs; osd++ {
		before := chaos.Stats().DelaysInjected
		chaos.SetRule(osd, transport.ChaosRule{Latency: time.Microsecond})
		readRounds(t, h, 1)
		chaos.ClearRule(osd)
		if chaos.Stats().DelaysInjected > before {
			slow = osd
			break
		}
	}
	if slow < 0 {
		t.Fatal("no OSD receives fetch traffic — harness wiring broken")
	}

	healthy := quantileDur(readRounds(t, h, 8), 0.99)

	delaysBefore := chaos.Stats().DelaysInjected
	chaos.SetRule(slow, transport.ChaosRule{Latency: 30 * time.Millisecond})
	// Warm up until the slow node's breaker opens: each read that touches it
	// either absorbs the 30ms delay or loses to the hedge with an overdue
	// cancel, and both register as slow observations.
	deadline := time.Now().Add(15 * time.Second)
	for breakers.State(slow) != resilience.BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("slow OSD %d never tripped its breaker despite taking fetch traffic", slow)
		}
		readRounds(t, h, 1)
	}

	p99 := quantileDur(readRounds(t, h, 12), 0.99)
	// Loose bound: 2× healthy p99 plus fixed slack, well below the 30ms
	// injected latency a read would absorb if it still touched the slow node.
	if limit := 2*healthy + 10*time.Millisecond; p99 > limit {
		t.Fatalf("p99 with slow node = %v, want <= %v (healthy p99 %v)", p99, limit, healthy)
	}
	if h.ctrl.Stats().BreakerDemotions == 0 {
		t.Fatal("open breaker never demoted the slow node")
	}
	if st := chaos.Stats(); st.DelaysInjected == delaysBefore {
		t.Fatal("chaos harness injected no delays — scenario did not exercise the slow node")
	}
}

// TestChaosFlakyNode makes one OSD fail every request. Reads must see zero
// errors — failover and breaker demotion absorb the faults — and the flaky
// node's breaker must open so later reads stop burning failovers on it.
func TestChaosFlakyNode(t *testing.T) {
	chaos := transport.NewChaos(3)
	breakers := resilience.NewBreakerSet(resilience.BreakerConfig{
		ErrorThreshold: 3,
		OpenFor:        time.Minute,
	})
	h, _ := newHarnessWith(t,
		core.ServeOptions{Breakers: breakers},
		transport.ServerConfig{StagedPutTTL: time.Minute, Chaos: chaos},
		transport.ClientConfig{Conns: 3})

	const flaky = 3
	chaos.SetRule(flaky, transport.ChaosRule{ErrorRate: 1})
	deadline := time.Now().Add(15 * time.Second)
	for breakers.State(flaky) != resilience.BreakerOpen {
		if time.Now().After(deadline) {
			t.Skipf("scheduler never routed enough reads through OSD %d to trip its breaker", flaky)
		}
		readRounds(t, h, 1) // fails the test on any read error
	}
	failoversAtOpen := h.ctrl.Stats().FetchFailovers
	if failoversAtOpen == 0 {
		t.Fatal("flaky node tripped its breaker without any failover being counted")
	}

	readRounds(t, h, 10)
	stats := h.ctrl.Stats()
	if stats.BreakerDemotions == 0 {
		t.Fatal("open breaker never demoted the flaky node")
	}
	// Demotion keeps the flaky node out of the first-choice picks, so
	// failovers should nearly stop once the breaker is open. Allow a little
	// slack for reads already in flight at the transition.
	if grown := stats.FetchFailovers - failoversAtOpen; grown > failoversAtOpen {
		t.Fatalf("failovers kept growing after breaker opened: %d before, %d after", failoversAtOpen, grown)
	}
}

// TestChaosPartitionDuringRepair loses one OSD (chunk loss, repair starts)
// and asymmetrically partitions another — its requests vanish without a
// response. Hedged reads must complete around the black hole, repair must
// converge, and healing the partition restores a clean pool.
func TestChaosPartitionDuringRepair(t *testing.T) {
	chaos := transport.NewChaos(5)
	h, _ := newHarnessWith(t,
		core.ServeOptions{HedgeDelay: 3 * time.Millisecond, HedgeExtra: 2},
		transport.ServerConfig{StagedPutTTL: time.Minute, Chaos: chaos},
		transport.ClientConfig{Conns: 3})

	h.fail(t, 2)
	const partitioned = 6
	chaos.SetRule(partitioned, transport.ChaosRule{DropRequests: true})

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := h.readAndCheck(rctx, (r+i)%e2eObjects, h.payload((r+i)%e2eObjects))
				cancel()
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	waitCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := h.repair.WaitIdle(waitCtx); err != nil {
		t.Fatalf("repair did not drain during the partition: %v", err)
	}
	if st := chaos.Stats(); st.RequestsDropped == 0 {
		t.Fatal("partition dropped no requests — scenario did not exercise the black hole")
	}

	chaos.Reset()
	h.recover(t, 2)
	waitCtx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if err := h.repair.WaitIdle(waitCtx2); err != nil {
		t.Fatalf("repair did not drain after healing: %v", err)
	}
	readRounds(t, h, 2)
}

// TestChaosOverloadRecovery drives a tiny server far past its capacity with
// admission control and budgeted retries on: every failure must classify as
// overload or a saturation shed (never a correctness error), the retry
// budget must keep wire amplification under 1.2×, and once the surge stops
// the gate must reopen — a full round of reads succeeds immediately.
func TestChaosOverloadRecovery(t *testing.T) {
	h, client := newHarnessWith(t,
		core.ServeOptions{Admission: &core.AdmissionConfig{MaxInFlight: 8}},
		transport.ServerConfig{StagedPutTTL: time.Minute, Workers: 2, MaxInFlight: 8},
		transport.ClientConfig{
			Conns:   2,
			Retries: 8,
			Backoff: resilience.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		})
	// Skew the rates so the plan marks low-value files — the deepest
	// brownout level needs something it is allowed to shed.
	if _, err := h.ctrl.PlanTimeBin([]float64{0.5, 4, 4, 4, 4, 4}); err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var wg sync.WaitGroup
	var successes, overloads atomic.Int64
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				err := h.readAndCheck(context.Background(), (r+i)%e2eObjects, h.payload((r+i)%e2eObjects))
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, core.ErrSaturated) || resilience.IsOverload(err):
					overloads.Add(1)
				default:
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("non-overload error under 2x load: %v", err)
	}
	if successes.Load() == 0 {
		t.Fatal("no reads succeeded under overload")
	}
	_ = overloads.Load() // sheds are legitimate; zero is also fine if capacity held
	if h.ctrl.Stats().BrownoutReads == 0 {
		t.Fatal("admission gate never engaged under 2x concurrency")
	}

	// Retry amplification: wire requests divided by first-attempt requests.
	cs := client.Stats()
	if cs.Requests > 0 {
		amp := float64(cs.Requests) / float64(cs.Requests-cs.Retries)
		if amp >= 1.2 {
			t.Fatalf("retry amplification %.3f, want < 1.2 (requests %d, retries %d)", amp, cs.Requests, cs.Retries)
		}
	}

	// Recovery: the surge is gone, the queue-depth signal drops instantly,
	// and a full round of reads (including the low-value file) succeeds.
	if lvl := h.ctrl.SaturationLevel(); lvl != 0 {
		t.Fatalf("saturation level %d after the surge drained, want 0", lvl)
	}
	readRounds(t, h, 2)
}

// TestChaosTwoTenantIsolation is the multi-tenant QoS scenario: one OSD
// turns slow while a bronze tenant surges far past its fair share against a
// small admission gate. Gold reads must all succeed with correct data — the
// SLO ladder never sheds gold and priority hedging keeps its tail fetches
// racing the slow node — while every shed lands on bronze, and the gate
// reopens for everyone once the surge drains.
func TestChaosTwoTenantIsolation(t *testing.T) {
	chaos := transport.NewChaos(9)
	h, _ := newHarnessWith(t,
		core.ServeOptions{
			HedgeDelay: 3 * time.Millisecond,
			HedgeExtra: 2,
			Admission:  &core.AdmissionConfig{MaxInFlight: 8},
			Tenants: []core.TenantPolicy{
				{Name: "gold", Class: core.ClassGold, Weight: 4},
				{Name: "bronze", Class: core.ClassBronze, Weight: 1},
			},
		},
		transport.ServerConfig{StagedPutTTL: time.Minute, Chaos: chaos,
			TenantWeights: map[string]int{"gold": 4, "bronze": 1}},
		transport.ClientConfig{Conns: 3, Retries: 6})

	// Find an OSD that takes fetch traffic under the plan and slow it down.
	slow := -1
	for osd := 0; osd < e2eOSDs; osd++ {
		before := chaos.Stats().DelaysInjected
		chaos.SetRule(osd, transport.ChaosRule{Latency: time.Microsecond})
		readRounds(t, h, 1)
		chaos.ClearRule(osd)
		if chaos.Stats().DelaysInjected > before {
			slow = osd
			break
		}
	}
	if slow < 0 {
		t.Fatal("no OSD receives fetch traffic — harness wiring broken")
	}
	chaos.SetRule(slow, transport.ChaosRule{Latency: 10 * time.Millisecond})

	const goldReaders, bronzeReaders, opsEach = 3, 16, 12
	goldCtx := core.WithTenant(context.Background(), "gold")
	bronzeCtx := core.WithTenant(context.Background(), "bronze")
	var wg sync.WaitGroup
	var bronzeOK, bronzeShed atomic.Int64
	errCh := make(chan error, goldReaders+bronzeReaders)
	for r := 0; r < goldReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				fileID := (r + i) % e2eObjects
				// Gold is never shed and never throttled: any error is a
				// correctness failure.
				if err := h.readAndCheck(goldCtx, fileID, h.payload(fileID)); err != nil {
					select {
					case errCh <- fmt.Errorf("gold reader %d: %w", r, err):
					default:
					}
					return
				}
			}
		}(r)
	}
	for r := 0; r < bronzeReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				fileID := (r + i) % e2eObjects
				err := h.readAndCheck(bronzeCtx, fileID, h.payload(fileID))
				switch {
				case err == nil:
					bronzeOK.Add(1)
				case errors.Is(err, core.ErrSaturated) || resilience.IsOverload(err):
					bronzeShed.Add(1)
				default:
					select {
					case errCh <- fmt.Errorf("bronze reader %d: %w", r, err):
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("hard error under two-tenant chaos: %v", err)
	}

	ts := h.ctrl.TenantStats()
	if ts["gold"].Sheds != 0 {
		t.Fatalf("gold was shed %d times — the SLO ladder must never shed gold", ts["gold"].Sheds)
	}
	if total := ts["gold"].Sheds + ts["bronze"].Sheds; total > 0 && ts["bronze"].Sheds != total {
		t.Fatalf("bronze absorbed %d of %d sheds, want all", ts["bronze"].Sheds, total)
	}
	if bronzeOK.Load() == 0 {
		t.Fatal("no bronze read succeeded — shedding must degrade, not blackout")
	}
	if h.ctrl.Stats().BrownoutReads == 0 {
		t.Fatal("admission gate never engaged under the bronze surge")
	}

	// Recovery: faults and surge gone, the gate reopens for every tenant.
	chaos.Reset()
	if lvl := h.ctrl.SaturationLevel(); lvl == 3 {
		t.Fatalf("saturation still at level %d after the surge drained", lvl)
	}
	for fileID := 0; fileID < e2eObjects; fileID++ {
		if err := h.readAndCheck(bronzeCtx, fileID, h.payload(fileID)); err != nil {
			t.Fatalf("bronze read after recovery: %v", err)
		}
	}
}
