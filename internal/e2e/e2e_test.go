// Package e2e wires the full stack together — emulated OSD cluster, binary
// transport, striped client-side writes, Sprout controller, repair plane —
// and runs table-driven failure/overwrite scenarios against it. Run with
// -race in CI: the scenarios are deliberately concurrent.
package e2e

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprout/internal/core"
	"sprout/internal/objstore"
	"sprout/internal/optimizer"
	"sprout/internal/queue"
	"sprout/internal/repair"
	"sprout/internal/transport"
)

const (
	e2eObjects = 6
	e2eSize    = 16 << 10
	e2eOSDs    = 12
	e2eN       = 7
	e2eK       = 4
)

// harness is one fully wired stack: cluster + pool + TCP server + pooled
// client + striped writer + remote fetcher + controller + repair manager.
type harness struct {
	cluster   *objstore.Cluster
	pool      *objstore.Pool
	writer    *transport.StripedWriter
	fetcher   *transport.RemoteFetcher
	ctrl      *core.Controller
	repair    *repair.Manager
	payloads  [][]byte // last payload written per file, guarded by payloadMu
	payloadMu sync.Mutex
}

func (h *harness) objName(fileID int) string { return fmt.Sprintf("file-%04d", fileID) }

func (h *harness) payload(fileID int) []byte {
	h.payloadMu.Lock()
	defer h.payloadMu.Unlock()
	return h.payloads[fileID]
}

func (h *harness) setPayload(fileID int, data []byte) {
	h.payloadMu.Lock()
	h.payloads[fileID] = data
	h.payloadMu.Unlock()
}

// write ingests new content for a file through the controller (striped
// client-side write over the transport + functional-cache refresh).
func (h *harness) write(ctx context.Context, fileID int, data []byte) error {
	if err := h.ctrl.Write(ctx, fileID, data, h.writer); err != nil {
		return err
	}
	h.setPayload(fileID, data)
	return nil
}

// fail takes OSDs down (losing their chunks) in both the storage plane and
// the controller's membership view, then kicks the repair plane.
func (h *harness) fail(t *testing.T, ids ...int) {
	t.Helper()
	if err := h.cluster.FailOSDs(true, ids...); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		h.ctrl.SetNodeDown(id)
	}
	h.repair.Kick()
}

func (h *harness) recover(t *testing.T, ids ...int) {
	t.Helper()
	if err := h.cluster.RecoverOSDs(ids...); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		h.ctrl.SetNodeUp(id)
	}
	h.repair.Kick()
}

// newHarness boots the stack: objects ingested with striped writes over
// TCP, controller planned + prefetched over the remote fetcher, repair
// workers running.
func newHarness(t *testing.T, serve core.ServeOptions) *harness {
	h, _ := newHarnessWith(t, serve,
		transport.ServerConfig{StagedPutTTL: time.Minute},
		transport.ClientConfig{Conns: 3})
	return h
}

// newHarnessWith boots the stack with explicit transport configs (chaos
// harness, tiny worker pools, client retry policies) and also returns the
// client so scenarios can inspect its transport stats.
func newHarnessWith(t *testing.T, serve core.ServeOptions, scfg transport.ServerConfig, ccfg transport.ClientConfig) (*harness, *transport.Client) {
	t.Helper()
	ctx := context.Background()
	cluster, err := objstore.NewCluster(objstore.ClusterConfig{
		NumOSDs:      e2eOSDs,
		Services:     []queue.Dist{queue.Deterministic{Value: 0.0003}},
		RefChunkSize: e2eSize / e2eK,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.CreatePool("ec", e2eN, e2eK)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServerWithConfig(cluster, scfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := transport.DialConfig(addr, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })

	writer, err := transport.NewStripedWriter(ctx, client, "ec")
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		cluster:  cluster,
		pool:     pool,
		writer:   writer,
		fetcher:  &transport.RemoteFetcher{Client: client, Pool: "ec"},
		payloads: make([][]byte, e2eObjects),
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < e2eObjects; i++ {
		h.payloads[i] = make([]byte, e2eSize)
		rng.Read(h.payloads[i])
		if _, err := writer.Put(ctx, h.objName(i), h.payloads[i]); err != nil {
			t.Fatalf("initial striped ingest of %s: %v", h.objName(i), err)
		}
	}

	lambdas := make([]float64, e2eObjects)
	for i := range lambdas {
		lambdas[i] = 2.0
	}
	clu, err := pool.ClusterView(lambdas)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.NewControllerWith(clu, 2*e2eObjects, optimizer.Options{MaxOuterIter: 6}, serve, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ctrl.Close() })
	if _, err := ctrl.PlanTimeBin(lambdas); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.PrefetchCache(ctx, h.fetcher); err != nil {
		t.Fatal(err)
	}
	h.ctrl = ctrl

	mgr := repair.NewManager(pool, repair.Config{Workers: 2, ScanInterval: 20 * time.Millisecond})
	mgr.Start()
	t.Cleanup(mgr.Close)
	h.repair = mgr
	return h, client
}

// readAndCheck reads fileID through the controller and verifies the bytes
// against the allowed payload set.
func (h *harness) readAndCheck(ctx context.Context, fileID int, allowed ...[]byte) error {
	got, err := h.ctrl.Read(ctx, fileID, h.fetcher)
	if err != nil {
		return fmt.Errorf("read file %d: %w", fileID, err)
	}
	for _, want := range allowed {
		if bytes.Equal(got, want) {
			return nil
		}
	}
	return fmt.Errorf("read file %d: bytes match none of the %d allowed payloads (mixed stripe?)", fileID, len(allowed))
}

func TestScenarios(t *testing.T) {
	scenarios := []struct {
		name  string
		serve core.ServeOptions
		run   func(t *testing.T, h *harness)
	}{
		{name: "overwrite-under-load", run: scenarioOverwriteUnderLoad},
		{name: "write-during-osd-failure", run: scenarioWriteDuringFailure},
		{name: "write-then-degraded-read", run: scenarioWriteThenDegradedRead},
		{
			name:  "hedged-read-during-repair",
			serve: core.ServeOptions{HedgeDelay: 2 * time.Millisecond, HedgeExtra: 2},
			run:   scenarioHedgedReadDuringRepair,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sc.run(t, newHarness(t, sc.serve))
		})
	}
}

// scenarioOverwriteUnderLoad overwrites one hot file repeatedly while
// readers hammer the whole set: every read of the hot file must return a
// complete committed cut, and after the writer quiesces a fresh read serves
// the last one.
func scenarioOverwriteUnderLoad(t *testing.T, h *harness) {
	ctx := context.Background()
	const hot = 0
	const overwrites = 10

	initial := h.payload(hot)
	cuts := make([][]byte, 0, overwrites+1)
	cuts = append(cuts, initial)
	var cutMu sync.Mutex
	allowedCuts := func() [][]byte {
		cutMu.Lock()
		defer cutMu.Unlock()
		return append([][]byte(nil), cuts...)
	}

	var wg sync.WaitGroup
	var writerDone atomic.Bool
	errCh := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < overwrites; i++ {
			cut := make([]byte, e2eSize)
			for j := range cut {
				cut[j] = byte(i+1) ^ byte(j*5)
			}
			cutMu.Lock()
			cuts = append(cuts, cut)
			cutMu.Unlock()
			if err := h.write(ctx, hot, cut); err != nil {
				errCh <- fmt.Errorf("overwrite %d: %w", i, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				if writerDone.Load() && i > 3 {
					return
				}
				fileID := i % e2eObjects
				if fileID == hot {
					if err := h.readAndCheck(ctx, hot, allowedCuts()...); err != nil {
						errCh <- fmt.Errorf("reader %d: %w", r, err)
						return
					}
					continue
				}
				if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	h.ctrl.WaitFills()
	if err := h.readAndCheck(ctx, hot, h.payload(hot)); err != nil {
		t.Fatalf("after quiesce: %v", err)
	}
	if stats := h.ctrl.Stats(); stats.Writes != overwrites {
		t.Fatalf("controller recorded %d writes, want %d", stats.Writes, overwrites)
	}
}

// scenarioWriteDuringFailure ingests new content while two OSDs are down
// with chunk loss: staging re-places the affected chunks on live OSDs, the
// write commits, and the new content reads back both degraded and after
// repair heals the pool.
func scenarioWriteDuringFailure(t *testing.T, h *harness) {
	ctx := context.Background()
	h.fail(t, 3, 8)

	cut := make([]byte, e2eSize)
	for j := range cut {
		cut[j] = 0xAB ^ byte(j*11)
	}
	if err := h.write(ctx, 1, cut); err != nil {
		t.Fatalf("write during OSD failure: %v", err)
	}
	if err := h.readAndCheck(ctx, 1, cut); err != nil {
		t.Fatalf("degraded read of fresh write: %v", err)
	}
	// Every chunk of the new stripe must be on a live OSD (staging dodged
	// the down ones).
	locs, err := h.pool.ChunkLocations(h.objName(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, loc := range locs {
		if !loc.Alive || !loc.Present {
			t.Fatalf("chunk %d of fresh write landed unreadable (osd %d)", loc.Chunk, loc.OSD.ID)
		}
	}

	// Recovery + repair restores full redundancy for the files that lost
	// chunks; the fresh write stays intact throughout.
	h.recover(t, 3, 8)
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.repair.WaitIdle(waitCtx); err != nil {
		t.Fatalf("repair did not drain: %v", err)
	}
	if err := h.readAndCheck(ctx, 1, cut); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
}

// scenarioWriteThenDegradedRead writes new content, then loses n−k OSDs:
// the controller must still decode the new stripe from the survivors (plus
// cache), never the old bytes.
func scenarioWriteThenDegradedRead(t *testing.T, h *harness) {
	ctx := context.Background()
	cut := make([]byte, e2eSize)
	for j := range cut {
		cut[j] = 0x5C ^ byte(j*13)
	}
	if err := h.write(ctx, 2, cut); err != nil {
		t.Fatal(err)
	}
	h.fail(t, 1, 5, 9) // n−k = 3 OSDs down, chunks lost
	for i := 0; i < 4; i++ {
		if err := h.readAndCheck(ctx, 2, cut); err != nil {
			t.Fatalf("degraded read %d: %v", i, err)
		}
	}
	// Reads of every other file must also survive the triple failure.
	for fileID := 0; fileID < e2eObjects; fileID++ {
		if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
			t.Fatal(err)
		}
	}
}

// scenarioHedgedReadDuringRepair loses two OSDs and reads under hedging
// while the repair plane reconstructs the lost chunks concurrently; after
// repair drains, the pool is fully redundant and all content intact.
func scenarioHedgedReadDuringRepair(t *testing.T, h *harness) {
	ctx := context.Background()
	h.fail(t, 2, 6)

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				fileID := (r + i) % e2eObjects
				if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.repair.WaitIdle(waitCtx); err != nil {
		t.Fatalf("repair did not drain: %v", err)
	}
	if left := len(h.pool.DegradedObjects()); left != 0 {
		t.Fatalf("%d objects still degraded after repair", left)
	}
	for fileID := 0; fileID < e2eObjects; fileID++ {
		if err := h.readAndCheck(ctx, fileID, h.payload(fileID)); err != nil {
			t.Fatal(err)
		}
	}
}
