package e2e

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprout/internal/core"
	"sprout/internal/objstore"
	"sprout/internal/optimizer"
	"sprout/internal/queue"
	"sprout/internal/router"
	"sprout/internal/transport"
)

// TestChaosCrossShardCoherence is the sharded-plane sibling of
// scenarioOverwriteUnderLoad: several shard controllers over ONE storage
// pool, all warmed over the full namespace (the adversarial setup — every
// shard holds cache for files it does not own), a writer overwriting the
// hot file through the router while readers hammer every file through the
// router's ownership routing. Membership churns mid-run: a freshly-synced
// shard joins and an original shard leaves, moving ownership under the
// readers. Every hot read must return a complete committed cut — the
// versioned invalidation fan-out is what keeps a peer's warm cache from
// serving torn or stale stripes once ownership lands on it.
func TestChaosCrossShardCoherence(t *testing.T) {
	ctx := context.Background()
	cluster, err := objstore.NewCluster(objstore.ClusterConfig{
		NumOSDs:      e2eOSDs,
		Services:     []queue.Dist{queue.Deterministic{Value: 0.0003}},
		RefChunkSize: e2eSize / e2eK,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.CreatePool("ec", e2eN, e2eK)
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServerWithConfig(cluster, transport.ServerConfig{StagedPutTTL: time.Minute})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := transport.DialConfig(addr, transport.ClientConfig{Conns: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	writer, err := transport.NewStripedWriter(ctx, client, "ec")
	if err != nil {
		t.Fatal(err)
	}
	fetcher := &transport.RemoteFetcher{Client: client, Pool: "ec"}

	payloads := make([][]byte, e2eObjects)
	for i := 0; i < e2eObjects; i++ {
		payloads[i] = make([]byte, e2eSize)
		for j := range payloads[i] {
			payloads[i][j] = byte(i*31) ^ byte(j*7)
		}
		if _, err := writer.Put(ctx, fmt.Sprintf("file-%04d", i), payloads[i]); err != nil {
			t.Fatalf("initial striped ingest of file %d: %v", i, err)
		}
	}
	lambdas := make([]float64, e2eObjects)
	for i := range lambdas {
		lambdas[i] = 2.0
	}

	// newShardCtrl builds one controller over the shared pool, planned and
	// prefetched over the FULL namespace — deliberately not lambda-masked,
	// so every shard caches content it does not currently own and only the
	// invalidation protocol keeps that cache safe to serve after a
	// membership change hands the file to it.
	newShardCtrl := func() *core.Controller {
		clu, err := pool.ClusterView(lambdas)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := core.NewControllerWith(clu, 2*e2eObjects, optimizer.Options{MaxOuterIter: 6}, core.ServeOptions{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ctrl.Close() })
		if _, err := ctrl.PlanTimeBin(lambdas); err != nil {
			t.Fatal(err)
		}
		if err := ctrl.PrefetchCache(ctx, fetcher); err != nil {
			t.Fatal(err)
		}
		return ctrl
	}

	r := router.New(router.Options{FanoutWorkers: 2})
	t.Cleanup(func() { _ = r.Close() })
	var ctrls []*core.Controller
	for i := 0; i < 3; i++ {
		ctrl := newShardCtrl()
		ctrls = append(ctrls, ctrl)
		if err := r.AddShard(router.Shard{ID: fmt.Sprintf("shard-%d", i), Ctrl: ctrl}); err != nil {
			t.Fatal(err)
		}
	}

	const hot = 0
	cuts := [][]byte{payloads[hot]}
	var cutMu sync.Mutex
	allowedCuts := func() [][]byte {
		cutMu.Lock()
		defer cutMu.Unlock()
		return append([][]byte(nil), cuts...)
	}
	readAndCheck := func(fileID int, allowed [][]byte) error {
		got, err := r.Read(ctx, fileID, fetcher)
		if err != nil {
			return fmt.Errorf("routed read of file %d: %w", fileID, err)
		}
		for _, want := range allowed {
			if bytes.Equal(got, want) {
				return nil
			}
		}
		return fmt.Errorf("routed read of file %d: bytes match none of the %d allowed payloads (stale or torn stripe)", fileID, len(allowed))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			for i := rdr; !stop.Load(); i++ {
				fileID := i % e2eObjects
				allowed := [][]byte{payloads[fileID]}
				if fileID == hot {
					allowed = allowedCuts()
				}
				if err := readAndCheck(fileID, allowed); err != nil {
					errCh <- fmt.Errorf("reader %d: %w", rdr, err)
					return
				}
			}
		}(rdr)
	}

	// The writer runs on the main goroutine so membership changes happen at
	// committed-write boundaries: a joining shard syncs its cache from the
	// storage plane while no write is in flight, then receives every later
	// invalidation. (A join racing an uncommitted write is an anti-entropy
	// problem the membership protocol does not claim to solve.)
	overwrite := func(i int) []byte {
		cut := make([]byte, e2eSize)
		for j := range cut {
			cut[j] = byte(i+1) ^ byte(j*5)
		}
		cutMu.Lock()
		cuts = append(cuts, cut)
		cutMu.Unlock()
		if err := r.Write(ctx, hot, cut, writer); err != nil {
			t.Fatalf("overwrite %d through router: %v", i, err)
		}
		return cut
	}
	var last []byte
	for i := 0; i < 4; i++ {
		last = overwrite(i)
	}
	// Join: a fourth shard syncs from the current committed state, then
	// starts owning its slice of the ring; readers cross into it live.
	joined := newShardCtrl()
	ctrls = append(ctrls, joined)
	if err := r.AddShard(router.Shard{ID: "shard-3", Ctrl: joined}); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 7; i++ {
		last = overwrite(i)
	}
	// Leave: an original shard departs; its files fall to peers whose warm
	// caches have been kept coherent by the fan-out all along.
	if err := r.RemoveShard("shard-1"); err != nil {
		t.Fatal(err)
	}
	for i := 7; i < 10; i++ {
		last = overwrite(i)
	}

	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	for _, ctrl := range ctrls {
		ctrl.WaitFills()
	}
	if err := readAndCheck(hot, [][]byte{last}); err != nil {
		t.Fatalf("after quiesce: %v", err)
	}
	for fileID := 1; fileID < e2eObjects; fileID++ {
		if err := readAndCheck(fileID, [][]byte{payloads[fileID]}); err != nil {
			t.Fatal(err)
		}
	}

	st := r.Stats()
	if st.InvalidationErrors != 0 {
		t.Fatalf("%d invalidation deliveries failed", st.InvalidationErrors)
	}
	// 10 writes × (shards-1) peers at each write's membership: 4×2 + 3×3 + 3×2.
	if want := int64(4*2 + 3*3 + 3*2); st.InvalidationsSent != want {
		t.Fatalf("invalidations sent = %d, want %d", st.InvalidationsSent, want)
	}
	var applied int64
	for _, ctrl := range ctrls {
		applied += ctrl.Stats().InvalidationsApplied
	}
	if applied == 0 {
		t.Fatal("no peer ever applied an invalidation — the fan-out never reached a warm cache")
	}
	shardsWithReads := 0
	for _, s := range st.Shards {
		if s.Reads > 0 {
			shardsWithReads++
		}
	}
	if shardsWithReads < 2 {
		t.Fatalf("reads landed on %d shards; the scenario is only cross-shard if several serve", shardsWithReads)
	}
}
