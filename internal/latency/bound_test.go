package latency

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sprout/internal/queue"
)

func makeMoments(means, variances []float64) []queue.ResponseMoments {
	out := make([]queue.ResponseMoments, len(means))
	for i := range means {
		out[i] = queue.ResponseMoments{Mean: means[i], Variance: variances[i]}
	}
	return out
}

func TestFileBoundFullyCached(t *testing.T) {
	moments := makeMoments([]float64{10, 20}, []float64{1, 2})
	b, z := FileBound([]float64{0, 0}, moments)
	if b != 0 || z != 0 {
		t.Fatalf("fully cached file must have zero bound, got %v (z=%v)", b, z)
	}
}

func TestFileBoundSingleNodeDeterministic(t *testing.T) {
	// With a single node, pi=1 and zero variance, the bound collapses to the
	// node's mean response time.
	moments := makeMoments([]float64{5}, []float64{0})
	b, _ := FileBound([]float64{1}, moments)
	if math.Abs(b-5) > 1e-6 {
		t.Fatalf("bound = %v, want 5", b)
	}
}

func TestFileBoundUpperBoundsMaxMean(t *testing.T) {
	// Requesting one chunk from each of k nodes: the bound must be at least
	// the largest mean (expectation of a max) and at most the sum of means
	// plus std deviations.
	moments := makeMoments([]float64{5, 10, 20}, []float64{4, 4, 4})
	pi := []float64{1, 1, 1}
	b, _ := FileBound(pi, moments)
	if b < 20 {
		t.Fatalf("bound %v below max mean 20", b)
	}
	var upper float64
	for _, m := range moments {
		upper += m.Mean + math.Sqrt(m.Variance)
	}
	if b > upper {
		t.Fatalf("bound %v above naive sum %v", b, upper)
	}
}

func TestFileBoundMonotoneInVariance(t *testing.T) {
	lo := makeMoments([]float64{10, 10}, []float64{1, 1})
	hi := makeMoments([]float64{10, 10}, []float64{100, 100})
	pi := []float64{1, 1}
	bLo, _ := FileBound(pi, lo)
	bHi, _ := FileBound(pi, hi)
	if bHi <= bLo {
		t.Fatalf("bound should grow with variance: %v <= %v", bHi, bLo)
	}
}

func TestFileBoundFewerChunksIsBetter(t *testing.T) {
	// Caching chunks (reducing total probability mass) must not increase the
	// bound when the remaining probabilities are unchanged or scaled down.
	moments := makeMoments([]float64{8, 12, 16, 20}, []float64{4, 4, 4, 4})
	full := []float64{1, 1, 1, 1}  // 4 chunks from storage
	fewer := []float64{1, 1, 1, 0} // one chunk served from cache
	bFull, _ := FileBound(full, moments)
	bFewer, _ := FileBound(fewer, moments)
	if bFewer >= bFull {
		t.Fatalf("caching a chunk should reduce the bound: %v >= %v", bFewer, bFull)
	}
}

func TestFileBoundPanicsOnBadInput(t *testing.T) {
	moments := makeMoments([]float64{1}, []float64{1})
	t.Run("length mismatch", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		FileBound([]float64{1, 1}, moments)
	})
	t.Run("negative probability", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		FileBound([]float64{-0.5}, moments)
	})
}

func TestFileBoundOptimalZIsStationary(t *testing.T) {
	// Property: the returned z is (numerically) a minimiser — perturbing z in
	// either direction must not decrease the objective.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		means := make([]float64, n)
		vars := make([]float64, n)
		pi := make([]float64, n)
		for i := 0; i < n; i++ {
			means[i] = 1 + rng.Float64()*50
			vars[i] = rng.Float64() * 100
			pi[i] = rng.Float64()
		}
		moments := makeMoments(means, vars)
		b, z := FileBound(pi, moments)
		for _, dz := range []float64{-0.01, 0.01, -1, 1} {
			zz := z + dz
			if zz < 0 {
				continue
			}
			if boundAt(zz, pi, moments) < b-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMomentsUnstable(t *testing.T) {
	stats := queue.StatsFromDist(queue.NewExponential(1))
	nodes := []Node{{Stats: stats, Lambda: 2}}
	if _, err := NodeMoments(nodes); err == nil {
		t.Fatal("expected error for unstable node")
	}
}

func TestObjectiveWeighting(t *testing.T) {
	moments := makeMoments([]float64{10, 30}, []float64{0, 0})
	pi := [][]float64{
		{1, 0}, // file 0 only uses the fast node
		{0, 1}, // file 1 only uses the slow node
	}
	// Equal rates: objective is the average of the two bounds.
	obj := Objective(pi, []float64{1, 1}, moments)
	if math.Abs(obj-20) > 1e-6 {
		t.Fatalf("objective = %v, want 20", obj)
	}
	// Skewed rates towards the fast file lower the weighted latency.
	objSkew := Objective(pi, []float64{3, 1}, moments)
	if objSkew >= obj {
		t.Fatalf("weighting towards the faster file should lower the objective: %v >= %v", objSkew, obj)
	}
	// Zero total rate.
	if Objective(pi, []float64{0, 0}, moments) != 0 {
		t.Fatal("objective with zero rates should be 0")
	}
}

func TestNodeLoads(t *testing.T) {
	pi := [][]float64{
		{0.5, 0.5, 0},
		{0, 1, 1},
	}
	loads := NodeLoads(pi, []float64{2, 4}, 3)
	want := []float64{1, 5, 4}
	for j := range want {
		if math.Abs(loads[j]-want[j]) > 1e-12 {
			t.Fatalf("load[%d] = %v, want %v", j, loads[j], want[j])
		}
	}
}

func TestEvaluateAssignment(t *testing.T) {
	stats := []queue.NodeStats{
		queue.StatsFromDist(queue.NewExponential(0.1)),
		queue.StatsFromDist(queue.NewExponential(0.1)),
	}
	pi := [][]float64{{1, 1}}
	obj, moments, err := EvaluateAssignment(stats, []float64{0.01}, pi)
	if err != nil {
		t.Fatal(err)
	}
	if len(moments) != 2 {
		t.Fatalf("expected 2 moment entries, got %d", len(moments))
	}
	if obj <= 0 {
		t.Fatalf("objective should be positive, got %v", obj)
	}
	// Unstable case.
	_, _, err = EvaluateAssignment(stats, []float64{1}, pi)
	if err == nil {
		t.Fatal("expected error for unstable assignment")
	}
}

func TestBoundTightAgainstMonteCarloMax(t *testing.T) {
	// The bound must upper-bound the expected maximum of independent
	// normal-ish response times with the same means/variances. We use gamma
	// samples (positive support) as stand-ins for Q_j.
	rng := rand.New(rand.NewSource(99))
	means := []float64{10, 14, 18}
	vars := []float64{9, 16, 25}
	moments := makeMoments(means, vars)
	pi := []float64{1, 1, 1}
	bound, _ := FileBound(pi, moments)

	var mc float64
	const trials = 20000
	for trial := 0; trial < trials; trial++ {
		var max float64
		for j := range means {
			g, err := queue.GammaFromMeanVar(means[j], vars[j])
			if err != nil {
				t.Fatal(err)
			}
			x := g.Sample(rng)
			if x > max {
				max = x
			}
		}
		mc += max
	}
	mc /= trials
	if bound < mc {
		t.Fatalf("analytical bound %v is below Monte-Carlo expected max %v", bound, mc)
	}
}
