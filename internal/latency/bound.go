// Package latency implements the closed-form upper bound on mean file-access
// latency under probabilistic scheduling with functional caching (Lemma 1 of
// the paper) and the weighted-average objective of the cache-optimization
// problem (eq. (5)).
//
// Given per-node response-time moments E[Q_j], Var[Q_j] (from
// internal/queue) and per-file scheduling probabilities pi_{i,j}, the bound
// for file i is
//
//	U_i = min_{z >= 0}  z + sum_j (pi_{i,j}/2) * [ (E[Q_j]-z) + sqrt((E[Q_j]-z)^2 + Var[Q_j]) ]
//
// which the package minimises over z with a derivative bisection (the inner
// function is convex in z).
package latency

import (
	"errors"
	"fmt"
	"math"

	"sprout/internal/queue"
)

// Node describes one storage node as the bound sees it: its service-time
// statistics and the aggregate chunk arrival rate currently routed to it.
type Node struct {
	Stats  queue.NodeStats
	Lambda float64 // aggregate chunk arrival rate Lambda_j
}

// ErrUnstableNode wraps queue.ErrUnstable with the node index for context.
var ErrUnstableNode = errors.New("latency: node unstable")

// NodeMoments computes E[Q_j] and Var[Q_j] for every node. It returns an
// error naming the first unstable node, if any.
func NodeMoments(nodes []Node) ([]queue.ResponseMoments, error) {
	out := make([]queue.ResponseMoments, len(nodes))
	for j, n := range nodes {
		m, err := n.Stats.Response(n.Lambda)
		if err != nil {
			return nil, fmt.Errorf("%w: node %d (rho=%.4f): %v", ErrUnstableNode, j, m.Rho, err)
		}
		out[j] = m
	}
	return out, nil
}

// boundAt evaluates the inner expression of the bound at a fixed z.
func boundAt(z float64, pi []float64, moments []queue.ResponseMoments) float64 {
	sum := z
	for j, p := range pi {
		if p <= 0 {
			continue
		}
		diff := moments[j].Mean - z
		sum += p / 2 * (diff + math.Sqrt(diff*diff+moments[j].Variance))
	}
	return sum
}

// boundDerivative evaluates d/dz of the inner expression.
func boundDerivative(z float64, pi []float64, moments []queue.ResponseMoments) float64 {
	d := 1.0
	for j, p := range pi {
		if p <= 0 {
			continue
		}
		diff := moments[j].Mean - z
		denom := math.Sqrt(diff*diff + moments[j].Variance)
		if denom == 0 {
			d += p / 2 * (-1)
			continue
		}
		d += p / 2 * (-1 - diff/denom)
	}
	return d
}

// FileBound computes U_i and the minimising z for a single file, given the
// file's scheduling probabilities pi (indexed by node) and the per-node
// response moments. Probabilities for nodes that do not host the file must
// be zero. The minimisation respects the paper's z >= 0 constraint so the
// bound remains valid when a file is fully cached (sum_j pi = 0 gives U = 0).
func FileBound(pi []float64, moments []queue.ResponseMoments) (bound, zOpt float64) {
	if len(pi) != len(moments) {
		panic(fmt.Sprintf("latency: pi length %d != moments length %d", len(pi), len(moments)))
	}
	total := 0.0
	maxMean := 0.0
	for j, p := range pi {
		if p < 0 {
			panic(fmt.Sprintf("latency: negative probability %v at node %d", p, j))
		}
		total += p
		if p > 0 && moments[j].Mean > maxMean {
			maxMean = moments[j].Mean
		}
	}
	if total == 0 {
		// File served entirely from cache: latency bound is zero.
		return 0, 0
	}

	// The objective is convex in z; its derivative is increasing. At z=0 the
	// derivative may already be >= 0 (then z*=0); otherwise bisect on an
	// interval whose upper end has positive derivative.
	lo, hi := 0.0, maxMean
	if boundDerivative(lo, pi, moments) >= 0 {
		return boundAt(0, pi, moments), 0
	}
	for boundDerivative(hi, pi, moments) < 0 {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for iter := 0; iter < 100 && hi-lo > 1e-12*(1+hi); iter++ {
		mid := (lo + hi) / 2
		if boundDerivative(mid, pi, moments) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	z := (lo + hi) / 2
	return boundAt(z, pi, moments), z
}

// Objective computes the arrival-rate-weighted mean latency bound of eq. (5):
// sum_i (lambda_i / lambda_total) * U_i. pi[i][j] is the probability that a
// request for file i reads a chunk from node j. lambdas[i] is the file's
// request arrival rate.
func Objective(pi [][]float64, lambdas []float64, moments []queue.ResponseMoments) float64 {
	if len(pi) != len(lambdas) {
		panic(fmt.Sprintf("latency: pi files %d != lambdas %d", len(pi), len(lambdas)))
	}
	var totalRate float64
	for _, l := range lambdas {
		totalRate += l
	}
	if totalRate == 0 {
		return 0
	}
	var obj float64
	for i := range pi {
		if lambdas[i] == 0 {
			continue
		}
		b, _ := FileBound(pi[i], moments)
		obj += lambdas[i] / totalRate * b
	}
	return obj
}

// NodeLoads aggregates the chunk arrival rate at each node implied by the
// scheduling probabilities: Lambda_j = sum_i lambda_i * pi_{i,j}.
func NodeLoads(pi [][]float64, lambdas []float64, numNodes int) []float64 {
	loads := make([]float64, numNodes)
	for i := range pi {
		for j, p := range pi[i] {
			loads[j] += lambdas[i] * p
		}
	}
	return loads
}

// EvaluateAssignment is a convenience helper that, given node service stats,
// file arrival rates and scheduling probabilities, computes node loads,
// response moments and the weighted latency bound in one call. It returns an
// error if any node would be unstable.
func EvaluateAssignment(stats []queue.NodeStats, lambdas []float64, pi [][]float64) (float64, []queue.ResponseMoments, error) {
	loads := NodeLoads(pi, lambdas, len(stats))
	nodes := make([]Node, len(stats))
	for j := range stats {
		nodes[j] = Node{Stats: stats[j], Lambda: loads[j]}
	}
	moments, err := NodeMoments(nodes)
	if err != nil {
		return math.Inf(1), nil, err
	}
	return Objective(pi, lambdas, moments), moments, nil
}
