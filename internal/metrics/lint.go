package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// gaugeUnits are the unit suffixes a gauge (or non-counter) name may end
// with. Counters must end in _total and histograms in _seconds; gauges name
// the quantity they measure.
var gaugeUnits = []string{
	"bytes", "chunks", "seconds", "ratio", "level", "requests", "files",
	"plans", "objects", "info", "leases", "count",
}

// Lint applies promlint-style conformance rules to every registered family
// and returns one message per violation. The rules, enforced by CI:
//
//   - names are snake_case with the sprout_ namespace prefix
//   - help text is non-empty
//   - counters end in _total, histograms in _seconds (base unit)
//   - gauges end in a recognised unit suffix
//   - label names are snake_case and never duplicated
//   - every sample carries exactly the declared labels (stable label sets)
func Lint(r *Registry) []string {
	var issues []string
	bad := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}
	for _, fam := range r.Gather() {
		d := fam.Desc
		if !nameRE.MatchString(d.Name) {
			bad("%s: name is not snake_case", d.Name)
		}
		if !strings.HasPrefix(d.Name, "sprout_") {
			bad("%s: missing sprout_ namespace prefix", d.Name)
		}
		if strings.TrimSpace(d.Help) == "" {
			bad("%s: empty help text", d.Name)
		}
		switch d.Kind {
		case KindCounter:
			if !strings.HasSuffix(d.Name, "_total") {
				bad("%s: counter name must end in _total", d.Name)
			}
		case KindHistogram:
			if !strings.HasSuffix(d.Name, "_seconds") {
				bad("%s: histogram name must end in _seconds", d.Name)
			}
		case KindGauge:
			if !hasUnitSuffix(d.Name) {
				bad("%s: gauge name must end in a unit suffix (%s)",
					d.Name, strings.Join(gaugeUnits, ", "))
			}
		}
		seenLabels := map[string]bool{}
		for _, l := range d.Labels {
			if !labelRE.MatchString(l) {
				bad("%s: label %q is not snake_case", d.Name, l)
			}
			if l == "le" {
				bad("%s: label le is reserved for histogram buckets", d.Name)
			}
			if seenLabels[l] {
				bad("%s: duplicate label %q", d.Name, l)
			}
			seenLabels[l] = true
		}
		seenSeries := map[string]bool{}
		for _, s := range fam.Samples {
			if len(s.LabelValues) != len(d.Labels) {
				bad("%s: sample with %d label values, declared %d",
					d.Name, len(s.LabelValues), len(d.Labels))
				continue
			}
			sig := strings.Join(s.LabelValues, "\x00")
			if seenSeries[sig] {
				bad("%s: duplicate series for labels %v", d.Name, s.LabelValues)
			}
			seenSeries[sig] = true
		}
	}
	return issues
}

func hasUnitSuffix(name string) bool {
	for _, u := range gaugeUnits {
		if strings.HasSuffix(name, "_"+u) {
			return true
		}
	}
	return false
}

// DocMarkdown renders the registry's families as a markdown reference table
// (name, type, labels, help) sorted by name. The docs/metrics.md file is
// generated from this and a test diffs the two, so the documentation cannot
// drift from the live registry.
func DocMarkdown(r *Registry) string {
	descs := r.Descs()
	sort.Slice(descs, func(i, j int) bool { return descs[i].Name < descs[j].Name })
	var sb strings.Builder
	sb.WriteString("| Metric | Type | Labels | Help |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, d := range descs {
		labels := strings.Join(d.Labels, ", ")
		if labels == "" {
			labels = "—"
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | %s |\n", d.Name, d.Kind, labels, d.Help)
	}
	return sb.String()
}
