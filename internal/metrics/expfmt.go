package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per family,
// then one line per sample; histograms expand into cumulative _bucket lines
// plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if err := writeFamily(bw, fam); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, fam Family) error {
	d := fam.Desc
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		d.Name, escapeHelp(d.Help), d.Name, d.Kind); err != nil {
		return err
	}
	for _, s := range fam.Samples {
		if d.Kind == KindHistogram {
			if err := writeHistogram(w, d, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			d.Name, labelString(d.Labels, s.LabelValues, "", ""), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w *bufio.Writer, d Desc, s Sample) error {
	h := s.Hist
	var cum uint64
	for i, ub := range h.UpperBounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		le := strconv.FormatFloat(ub, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			d.Name, labelString(d.Labels, s.LabelValues, "le", le), cum); err != nil {
			return err
		}
	}
	// The +Inf bucket must equal the total count; sum any overflow buckets.
	for i := len(h.UpperBounds); i < len(h.Counts); i++ {
		cum += h.Counts[i]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		d.Name, labelString(d.Labels, s.LabelValues, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		d.Name, labelString(d.Labels, s.LabelValues, "", ""), formatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		d.Name, labelString(d.Labels, s.LabelValues, "", ""), h.Count)
	return err
}

// labelString renders {a="x",b="y"} with an optional extra label appended
// (the histogram "le"); empty when there are no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(extraValue)
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format, suitable for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
