// Package metrics is a small, dependency-free metrics layer: a registry of
// named metric families (counters, gauges, histograms) rendered in the
// Prometheus text exposition format. It exists so every plane's existing
// stats structs — transport counters, controller read/write stats, repair
// progress, OSD health, cache occupancy — can be bridged into one scrapeable
// endpoint without adding a client-library dependency.
//
// Two styles of metric coexist:
//
//   - Live instruments (Counter, Gauge, Histogram) for code that wants to
//     record directly. The histogram reuses the controller's lock-free log2
//     bucket layout: bucket i counts observations in [2^(i-1), 2^i)
//     microseconds.
//   - Collectors (CollectorFunc) that pull values out of existing stats
//     structs at scrape time, so the hot paths keep their current atomic
//     counters and pay nothing for the exporter.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type.
type Kind int

// Metric family kinds, mirroring the Prometheus text-format TYPE values.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Desc describes one metric family: its name, help text, kind, and the
// label names every sample must carry (in order).
type Desc struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
}

// Sample is one exported value of a family. LabelValues pairs positionally
// with Desc.Labels. Counters and gauges use Value; histograms use Hist.
type Sample struct {
	LabelValues []string
	Value       float64
	Hist        *HistValue
}

// HistValue is one histogram's bucketed distribution. Counts[i] is the
// number of observations in bucket i (NOT cumulative); bucket i covers
// (UpperBounds[i-1], UpperBounds[i]] and the final bucket, Counts[len(UpperBounds)],
// is the +Inf overflow. Sum is in the same unit as the bounds (seconds for
// latency histograms).
type HistValue struct {
	UpperBounds []float64
	Counts      []uint64
	Sum         float64
	Count       uint64
}

// Collector produces the current samples of one family at scrape time.
type Collector interface {
	Collect() []Sample
}

// CollectorFunc adapts a closure to the Collector interface.
type CollectorFunc func() []Sample

// Collect implements Collector.
func (f CollectorFunc) Collect() []Sample { return f() }

// family pairs a registered Desc with its collector.
type family struct {
	desc Desc
	col  Collector
}

// Family is one gathered metric family: its description and current samples.
type Family struct {
	Desc    Desc
	Samples []Sample
}

// Registry holds registered metric families and renders them on demand.
// Registration is typically done once at startup; Gather and WriteText are
// safe for concurrent use with registration.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// Register adds a family backed by the collector. It rejects duplicate or
// malformed names and malformed label names: scrape-time failures are the
// wrong place to find out a metric was misnamed.
func (r *Registry) Register(d Desc, c Collector) error {
	if !nameRE.MatchString(d.Name) {
		return fmt.Errorf("metrics: invalid metric name %q", d.Name)
	}
	for _, l := range d.Labels {
		if !labelRE.MatchString(l) {
			return fmt.Errorf("metrics: metric %s: invalid label name %q", d.Name, l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[d.Name] {
		return fmt.Errorf("metrics: duplicate metric name %q", d.Name)
	}
	r.names[d.Name] = true
	r.families = append(r.families, &family{desc: d, col: c})
	return nil
}

// MustRegister is Register, panicking on error (registration happens at
// startup where a bad name is a programming error).
func (r *Registry) MustRegister(d Desc, c Collector) {
	if err := r.Register(d, c); err != nil {
		panic(err)
	}
}

// Descs returns the registered family descriptions sorted by name.
func (r *Registry) Descs() []Desc {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Desc, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.desc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gather collects every family's current samples, sorted by family name.
// A collector returning a sample with the wrong label-value count is
// reported as a malformed family (its samples are dropped) rather than
// producing a corrupt exposition.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].desc.Name < fams[j].desc.Name })
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		samples := f.col.Collect()
		kept := samples[:0:0]
		for _, s := range samples {
			if len(s.LabelValues) != len(f.desc.Labels) {
				continue
			}
			if f.desc.Kind == KindHistogram && s.Hist == nil {
				continue
			}
			kept = append(kept, s)
		}
		out = append(out, Family{Desc: f.desc, Samples: kept})
	}
	return out
}

// ---- Live instruments ----

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Collect implements Collector.
func (c *Counter) Collect() []Sample {
	return []Sample{{Value: float64(c.v.Load())}}
}

// NewCounter registers and returns a label-less counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.MustRegister(Desc{Name: name, Help: help, Kind: KindCounter}, c)
	return c
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Collect implements Collector.
func (g *Gauge) Collect() []Sample {
	return []Sample{{Value: g.Value()}}
}

// NewGauge registers and returns a label-less gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.MustRegister(Desc{Name: name, Help: help, Kind: KindGauge}, g)
	return g
}

// histBuckets matches the controller's lock-free latency histogram: 28
// power-of-two microsecond buckets spanning [1µs, ~134s].
const histBuckets = 28

// Histogram is a lock-free log2 latency histogram: bucket i counts
// observations in [2^(i-1), 2^i) microseconds; the last bucket overflows.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sumNS   atomic.Int64
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(sec float64) {
	if sec < 0 {
		sec = 0
	}
	us := uint64(sec * 1e6)
	b := log2Bucket(us)
	h.buckets[b].Add(1)
	h.sumNS.Add(int64(sec * 1e9))
}

func log2Bucket(us uint64) int {
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Log2UpperBounds returns the shared bucket upper bounds, in seconds, of the
// log2 microsecond layout: 2^i µs for i in [0, histBuckets-1); the final
// bucket is the +Inf overflow. Bridges exporting the controller's latency
// histograms reuse these bounds so every histogram in the exposition has an
// identical layout.
func Log2UpperBounds() []float64 {
	bounds := make([]float64, histBuckets-1)
	for i := range bounds {
		bounds[i] = float64(uint64(1)<<uint(i)) / 1e6
	}
	return bounds
}

// Value snapshots the histogram into a HistValue. Count is derived from the
// summed bucket loads rather than kept as a separate atomic: the buckets are
// loaded one by one, so an independent total could disagree with their sum
// under concurrent ObserveSeconds, and the exposition's +Inf bucket (the sum)
// would then mismatch _count — exactly what strict parsers reject.
func (h *Histogram) Value() *HistValue {
	v := &HistValue{
		UpperBounds: Log2UpperBounds(),
		Counts:      make([]uint64, histBuckets),
		Sum:         float64(h.sumNS.Load()) / 1e9,
	}
	for i := range v.Counts {
		v.Counts[i] = h.buckets[i].Load()
		v.Count += v.Counts[i]
	}
	return v
}

// Collect implements Collector.
func (h *Histogram) Collect() []Sample {
	return []Sample{{Hist: h.Value()}}
}

// NewHistogram registers and returns a label-less log2 histogram.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{}
	r.MustRegister(Desc{Name: name, Help: help, Kind: KindHistogram}, h)
	return h
}
