package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedSample is one sample line of a parsed exposition. Series is the
// full sample name as it appeared on the line — for histograms that includes
// the _bucket/_sum/_count suffix.
type ParsedSample struct {
	Series string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one metric family of a parsed exposition. For histograms,
// Buckets maps a label signature (excluding "le") to its cumulative bucket
// counts by upper bound, and Samples holds the _sum and _count series.
type ParsedFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ParsedSample
}

// ParseText parses a Prometheus text-format exposition strictly: every
// sample must be preceded by its family's # HELP and # TYPE lines, names
// and labels must be well-formed, histogram bucket series must be cumulative
// and end in a +Inf bucket that equals the _count, and no series may appear
// twice. It returns the families keyed by name.
//
// It is deliberately stricter than real scrapers: the conformance test uses
// it to fail on malformed output a lenient parser would shrug off.
func ParseText(r io.Reader) (map[string]*ParsedFamily, error) {
	fams := make(map[string]*ParsedFamily)
	var cur *ParsedFamily
	seen := make(map[string]bool) // name + sorted labels -> dup detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !nameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			cur = &ParsedFamily{Name: name, Help: help}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE for %s without preceding HELP", lineNo, name)
			}
			if cur.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
				cur.Type = typ
			default:
				return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(fams, name)
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s without preceding HELP/TYPE", lineNo, name)
		}
		sig := seriesSignature(name, labels)
		if seen[sig] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, sig)
		}
		seen[sig] = true
		fam.Samples = append(fam.Samples, ParsedSample{Series: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range fams {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", fam.Name)
		}
		if fam.Type == "histogram" {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves a sample name to its family, peeling the histogram
// series suffixes.
func familyFor(fams map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = map[string]string{}
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if labels, err = parseLabels(rest[brace+1 : end]); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
		}
	}
	if !nameRE.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid sample name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if key != "le" && !labelRE.MatchString(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("duplicate label %s", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func seriesSignature(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(name)
	for _, k := range keys {
		sb.WriteString("|")
		sb.WriteString(k)
		sb.WriteString("=")
		sb.WriteString(labels[k])
	}
	return sb.String()
}

// checkHistogram verifies each histogram series group is internally
// consistent: buckets cumulative and non-decreasing by le, a +Inf bucket
// present and equal to _count, and _sum/_count present.
func checkHistogram(fam *ParsedFamily) error {
	type group struct {
		buckets  map[float64]float64
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
	}
	groups := map[string]*group{}
	groupFor := func(labels map[string]string) *group {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		sig := seriesSignature(fam.Name, rest)
		g, ok := groups[sig]
		if !ok {
			g = &group{buckets: map[float64]float64{}}
			groups[sig] = g
		}
		return g
	}
	for _, s := range fam.Samples {
		g := groupFor(s.Labels)
		switch {
		case strings.HasSuffix(s.Series, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket series without le label", fam.Name)
			}
			if le == "+Inf" {
				g.inf, g.hasInf = s.Value, true
				continue
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", fam.Name, le)
			}
			g.buckets[ub] = s.Value
		case strings.HasSuffix(s.Series, "_sum"):
			g.hasSum = true
		case strings.HasSuffix(s.Series, "_count"):
			g.count, g.hasCount = s.Value, true
		default:
			return fmt.Errorf("%s: unexpected histogram series %s", fam.Name, s.Series)
		}
	}
	for sig, g := range groups {
		if !g.hasInf {
			return fmt.Errorf("%s (%s): histogram missing +Inf bucket", fam.Name, sig)
		}
		if !g.hasSum || !g.hasCount {
			return fmt.Errorf("%s (%s): histogram missing _sum or _count", fam.Name, sig)
		}
		if g.count != g.inf {
			return fmt.Errorf("%s (%s): +Inf bucket %v != count %v", fam.Name, sig, g.inf, g.count)
		}
		ubs := make([]float64, 0, len(g.buckets))
		for ub := range g.buckets {
			ubs = append(ubs, ub)
		}
		sort.Float64s(ubs)
		prev := -math.MaxFloat64
		prevCount := 0.0
		for _, ub := range ubs {
			if ub <= prev {
				return fmt.Errorf("%s: non-increasing le %v", fam.Name, ub)
			}
			if g.buckets[ub] < prevCount {
				return fmt.Errorf("%s (%s): bucket le=%v count %v below previous %v (not cumulative)",
					fam.Name, sig, ub, g.buckets[ub], prevCount)
			}
			prev, prevCount = ub, g.buckets[ub]
		}
		if g.inf < prevCount {
			return fmt.Errorf("%s (%s): +Inf bucket below last finite bucket", fam.Name, sig)
		}
	}
	return nil
}
