package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("sprout_test_ops_total", "ops")
	g := reg.NewGauge("sprout_test_depth_requests", "queue depth")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	g.Set(2.5)
	g.Add(0.5)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP sprout_test_ops_total ops",
		"# TYPE sprout_test_ops_total counter",
		"sprout_test_ops_total 5",
		"# TYPE sprout_test_depth_requests gauge",
		"sprout_test_depth_requests 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	fams, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("strict parse of own output: %v", err)
	}
	if got := fams["sprout_test_ops_total"].Samples[0].Value; got != 5 {
		t.Errorf("parsed counter = %v, want 5", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("sprout_test_latency_seconds", "latency")
	for _, d := range []time.Duration{time.Microsecond, 3 * time.Microsecond, time.Millisecond, time.Second} {
		h.ObserveSeconds(d.Seconds())
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("strict parse: %v", err)
	}
	fam := fams["sprout_test_latency_seconds"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("missing histogram family: %+v", fam)
	}
	var infCount, count float64
	for _, s := range fam.Samples {
		if s.Labels["le"] == "+Inf" {
			infCount = s.Value
		}
		if strings.HasSuffix(s.Series, "_count") {
			count = s.Value
		}
	}
	if infCount != 4 || count != 4 {
		t.Errorf("+Inf bucket %v / count %v, want 4 / 4", infCount, count)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Desc{Name: "Bad-Name", Help: "x"}, CollectorFunc(func() []Sample { return nil })); err == nil {
		t.Error("Register accepted a malformed name")
	}
	if err := reg.Register(Desc{Name: "sprout_ok_total", Help: "x"}, CollectorFunc(func() []Sample { return nil })); err != nil {
		t.Errorf("Register rejected a valid name: %v", err)
	}
	if err := reg.Register(Desc{Name: "sprout_ok_total", Help: "x"}, CollectorFunc(func() []Sample { return nil })); err == nil {
		t.Error("Register accepted a duplicate name")
	}
	if err := reg.Register(Desc{Name: "sprout_l_total", Labels: []string{"Bad Label"}, Help: "x"},
		CollectorFunc(func() []Sample { return nil })); err == nil {
		t.Error("Register accepted a malformed label")
	}
}

func TestLintFlagsViolations(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Desc{Name: "sprout_good_total", Help: "counts", Kind: KindCounter},
		CollectorFunc(func() []Sample { return []Sample{{Value: 1}} }))
	reg.MustRegister(Desc{Name: "bad_namespace_total", Help: "counts", Kind: KindCounter},
		CollectorFunc(func() []Sample { return nil }))
	reg.MustRegister(Desc{Name: "sprout_no_suffix", Help: "counts", Kind: KindCounter},
		CollectorFunc(func() []Sample { return nil }))
	reg.MustRegister(Desc{Name: "sprout_no_help_total", Help: "", Kind: KindCounter},
		CollectorFunc(func() []Sample { return nil }))
	reg.MustRegister(Desc{Name: "sprout_gauge_wat", Help: "x", Kind: KindGauge},
		CollectorFunc(func() []Sample { return nil }))
	reg.MustRegister(Desc{Name: "sprout_hist_ms", Help: "x", Kind: KindHistogram},
		CollectorFunc(func() []Sample { return nil }))
	issues := Lint(reg)
	wantSubstrings := []string{
		"bad_namespace_total: missing sprout_ namespace",
		"sprout_no_suffix: counter name must end in _total",
		"sprout_no_help_total: empty help",
		"sprout_gauge_wat: gauge name must end in a unit suffix",
		"sprout_hist_ms: histogram name must end in _seconds",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, issue := range issues {
			if strings.Contains(issue, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lint issues missing %q; got %v", want, issues)
		}
	}
	for _, issue := range issues {
		if strings.HasPrefix(issue, "sprout_good_total:") {
			t.Errorf("lint flagged the conforming metric: %s", issue)
		}
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without type": "sprout_x_total 1\n",
		"duplicate series": "# HELP sprout_x_total x\n# TYPE sprout_x_total counter\n" +
			"sprout_x_total 1\nsprout_x_total 2\n",
		"non-cumulative buckets": "# HELP sprout_h_seconds h\n# TYPE sprout_h_seconds histogram\n" +
			"sprout_h_seconds_bucket{le=\"0.1\"} 5\nsprout_h_seconds_bucket{le=\"1\"} 3\n" +
			"sprout_h_seconds_bucket{le=\"+Inf\"} 5\nsprout_h_seconds_sum 1\nsprout_h_seconds_count 5\n",
		"missing inf bucket": "# HELP sprout_h_seconds h\n# TYPE sprout_h_seconds histogram\n" +
			"sprout_h_seconds_bucket{le=\"0.1\"} 5\nsprout_h_seconds_sum 1\nsprout_h_seconds_count 5\n",
		"inf bucket disagrees with count": "# HELP sprout_h_seconds h\n# TYPE sprout_h_seconds histogram\n" +
			"sprout_h_seconds_bucket{le=\"+Inf\"} 4\nsprout_h_seconds_sum 1\nsprout_h_seconds_count 5\n",
		"bad value": "# HELP sprout_x_total x\n# TYPE sprout_x_total counter\nsprout_x_total abc\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: strict parser accepted malformed exposition", name)
		}
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("sprout_handler_ops_total", "ops").Add(7)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	fams, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse served exposition: %v", err)
	}
	if fams["sprout_handler_ops_total"].Samples[0].Value != 7 {
		t.Error("served counter value wrong")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveSeconds(float64(i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	v := h.Value()
	if v.Count != 8000 {
		t.Errorf("count = %d, want 8000", v.Count)
	}
	var sum uint64
	for _, c := range v.Counts {
		sum += c
	}
	if sum != 8000 {
		t.Errorf("bucket sum = %d, want 8000", sum)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Desc{Name: "sprout_esc_total", Help: "x", Kind: KindCounter, Labels: []string{"path"}},
		CollectorFunc(func() []Sample {
			return []Sample{{LabelValues: []string{`a"b\c`}, Value: 1}}
		}))
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse escaped labels: %v", err)
	}
	if got := fams["sprout_esc_total"].Samples[0].Labels["path"]; got != `a"b\c` {
		t.Errorf("label round trip = %q", got)
	}
}

func TestGaugeNaNAndInf(t *testing.T) {
	reg := NewRegistry()
	g := reg.NewGauge("sprout_inf_ratio", "x")
	g.Set(math.Inf(1))
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sprout_inf_ratio +Inf") {
		t.Errorf("exposition lacks +Inf rendering:\n%s", sb.String())
	}
}
