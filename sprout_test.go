package sprout_test

import (
	"bytes"
	"context"
	"testing"

	"sprout"
)

// memFetcher serves chunks from an in-memory encoding of each file.
type memFetcher map[int]map[int][]byte

func (m memFetcher) FetchChunk(_ context.Context, fileID, chunkIndex, _ int) ([]byte, error) {
	return m[fileID][chunkIndex], nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := sprout.ClusterConfig{
		NumNodes:     4,
		NumFiles:     4,
		N:            3,
		K:            2,
		FileSize:     1 << 10,
		ServiceRates: []float64{1, 0.9, 0.8, 0.7},
		ArrivalRates: []float64{0.1},
		Seed:         1,
	}
	clu, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := sprout.NewController(clu, 4, sprout.OptimizerOptions{MaxOuterIter: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Encode each file into an in-memory store with the controller's coders.
	store := memFetcher{}
	originals := map[int][]byte{}
	for _, meta := range ctrl.Files() {
		payload := bytes.Repeat([]byte{byte(meta.ID + 1)}, meta.SizeBytes)
		originals[meta.ID] = payload
		dataChunks, err := meta.Code.Split(payload)
		if err != nil {
			t.Fatal(err)
		}
		encoded, err := meta.Code.Encode(dataChunks)
		if err != nil {
			t.Fatal(err)
		}
		store[meta.ID] = map[int][]byte{}
		for i, ch := range encoded {
			store[meta.ID][i] = ch
		}
	}

	plan, err := ctrl.PlanTimeBin(clu.Lambdas())
	if err != nil {
		t.Fatal(err)
	}
	if plan.CacheUsed() > 4 {
		t.Fatalf("plan exceeds the cache capacity: %d", plan.CacheUsed())
	}
	for fileID := range originals {
		got, err := ctrl.Read(context.Background(), fileID, store)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, originals[fileID]) {
			t.Fatalf("file %d round-trip mismatch", fileID)
		}
	}
	if ctrl.Stats().Reads != int64(len(originals)) {
		t.Fatalf("stats reads = %d", ctrl.Stats().Reads)
	}
}

func TestPublicCodeAPI(t *testing.T) {
	code, err := sprout.NewCode(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("sprout"), 100)
	dataChunks, err := code.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	storage, err := code.Encode(dataChunks)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := code.CacheChunks(dataChunks, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Decode from 2 cache chunks + 3 storage chunks (the paper's example).
	chunks := []sprout.Chunk{
		{Index: code.CacheChunkIndex(0), Data: cached[0]},
		{Index: code.CacheChunkIndex(1), Data: cached[1]},
		{Index: 0, Data: storage[0]},
		{Index: 3, Data: storage[3]},
		{Index: 5, Data: storage[5]},
	}
	got, err := code.Decode(chunks, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode through the public API failed")
	}
}

func TestPaperConfigExport(t *testing.T) {
	cfg := sprout.PaperConfig()
	if cfg.NumNodes != 12 || cfg.NumFiles != 1000 {
		t.Fatalf("paper config = %+v", cfg)
	}
	rates := sprout.PaperServiceRates()
	if len(rates) != 12 {
		t.Fatalf("service rates = %v", rates)
	}
	rates[0] = 99 // must not alias the internal slice
	if sprout.PaperServiceRates()[0] == 99 {
		t.Fatal("PaperServiceRates leaks internal state")
	}
	if sprout.Exponential(2).Mean() != 0.5 {
		t.Fatal("Exponential helper wrong")
	}
	p, err := sprout.ProblemFromCluster(mustBuild(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sprout.Optimize(p, sprout.OptimizerOptions{MaxOuterIter: 3}); err != nil {
		t.Fatal(err)
	}
}

func mustBuild(t *testing.T) *sprout.Cluster {
	t.Helper()
	cfg := sprout.PaperConfig()
	cfg.NumFiles = 20
	clu, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return clu
}
