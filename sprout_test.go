package sprout_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"sprout"
)

// memFetcher serves chunks from an in-memory encoding of each file.
type memFetcher map[int]map[int][]byte

func (m memFetcher) FetchChunk(_ context.Context, fileID, chunkIndex, _ int) ([]byte, error) {
	return m[fileID][chunkIndex], nil
}

func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := sprout.ClusterConfig{
		NumNodes:     4,
		NumFiles:     4,
		N:            3,
		K:            2,
		FileSize:     1 << 10,
		ServiceRates: []float64{1, 0.9, 0.8, 0.7},
		ArrivalRates: []float64{0.1},
		Seed:         1,
	}
	clu, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := sprout.NewController(clu, 4, sprout.OptimizerOptions{MaxOuterIter: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Encode each file into an in-memory store with the controller's coders.
	store := memFetcher{}
	originals := map[int][]byte{}
	for _, meta := range ctrl.Files() {
		payload := bytes.Repeat([]byte{byte(meta.ID + 1)}, meta.SizeBytes)
		originals[meta.ID] = payload
		dataChunks, err := meta.Code.Split(payload)
		if err != nil {
			t.Fatal(err)
		}
		encoded, err := meta.Code.Encode(dataChunks)
		if err != nil {
			t.Fatal(err)
		}
		store[meta.ID] = map[int][]byte{}
		for i, ch := range encoded {
			store[meta.ID][i] = ch
		}
	}

	plan, err := ctrl.PlanTimeBin(clu.Lambdas())
	if err != nil {
		t.Fatal(err)
	}
	if plan.CacheUsed() > 4 {
		t.Fatalf("plan exceeds the cache capacity: %d", plan.CacheUsed())
	}
	for fileID := range originals {
		got, err := ctrl.Read(context.Background(), fileID, store)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, originals[fileID]) {
			t.Fatalf("file %d round-trip mismatch", fileID)
		}
	}
	if ctrl.Stats().Reads != int64(len(originals)) {
		t.Fatalf("stats reads = %d", ctrl.Stats().Reads)
	}
}

func TestPublicCodeAPI(t *testing.T) {
	code, err := sprout.NewCode(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("sprout"), 100)
	dataChunks, err := code.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	storage, err := code.Encode(dataChunks)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := code.CacheChunks(dataChunks, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Decode from 2 cache chunks + 3 storage chunks (the paper's example).
	chunks := []sprout.Chunk{
		{Index: code.CacheChunkIndex(0), Data: cached[0]},
		{Index: code.CacheChunkIndex(1), Data: cached[1]},
		{Index: 0, Data: storage[0]},
		{Index: 3, Data: storage[3]},
		{Index: 5, Data: storage[5]},
	}
	got, err := code.Decode(chunks, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("decode through the public API failed")
	}
}

func TestPaperConfigExport(t *testing.T) {
	cfg := sprout.PaperConfig()
	if cfg.NumNodes != 12 || cfg.NumFiles != 1000 {
		t.Fatalf("paper config = %+v", cfg)
	}
	rates := sprout.PaperServiceRates()
	if len(rates) != 12 {
		t.Fatalf("service rates = %v", rates)
	}
	rates[0] = 99 // must not alias the internal slice
	if sprout.PaperServiceRates()[0] == 99 {
		t.Fatal("PaperServiceRates leaks internal state")
	}
	if sprout.Exponential(2).Mean() != 0.5 {
		t.Fatal("Exponential helper wrong")
	}
	p, err := sprout.ProblemFromCluster(mustBuild(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sprout.Optimize(p, sprout.OptimizerOptions{MaxOuterIter: 3}); err != nil {
		t.Fatal(err)
	}
}

func mustBuild(t *testing.T) *sprout.Cluster {
	t.Helper()
	cfg := sprout.PaperConfig()
	cfg.NumFiles = 20
	clu, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	return clu
}

// TestSelfHealingFacade drives the failure-handling surface purely through
// the public facade: storage cluster, pool, controller over the pool's
// topology, failure detector, and repair manager.
func TestSelfHealingFacade(t *testing.T) {
	ctx := context.Background()
	oc, err := sprout.NewStorageCluster(sprout.StorageConfig{
		NumOSDs:      10,
		Services:     []sprout.ServiceDist{sprout.Exponential(5000)},
		RefChunkSize: 1 << 10,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := oc.CreatePool("ec", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 8<<10)
	for i := 0; i < 6; i++ {
		if err := pool.Put(ctx, fmt.Sprintf("obj-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	lambdas := make([]float64, 6)
	for i := range lambdas {
		lambdas[i] = 0.01
	}
	view, err := pool.ClusterView(lambdas)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := sprout.NewController(view, 6, sprout.OptimizerOptions{MaxOuterIter: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	fetcher := sprout.FetcherFunc(func(ctx context.Context, fileID, chunkIndex, _ int) ([]byte, error) {
		return pool.GetChunk(ctx, fmt.Sprintf("obj-%d", fileID), chunkIndex)
	})
	if _, err := ctrl.PlanTimeBin(lambdas); err != nil {
		t.Fatal(err)
	}

	det := sprout.NewFailureDetector(sprout.DetectorConfig{
		ErrorThreshold: 1,
		OnDown:         func(id int) { ctrl.SetNodeDown(id) },
		OnUp:           func(id int) { ctrl.SetNodeUp(id) },
	})
	mgr := sprout.NewRepairManager(pool, sprout.RepairConfig{Workers: 2})
	mgr.Start()
	defer mgr.Close()

	// Fail an OSD with loss, detect it, read degraded, repair, verify.
	if err := oc.FailOSDs(true, 3); err != nil {
		t.Fatal(err)
	}
	det.Observe(3, fmt.Errorf("probe failed"), 0)
	if got := ctrl.DownNodes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("detector did not propagate membership: %v", got)
	}
	for i := 0; i < 6; i++ {
		got, err := ctrl.Read(ctx, i, fetcher)
		if err != nil {
			t.Fatalf("degraded read %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("file %d corrupted", i)
		}
	}
	if n := mgr.ScanOnce(); n == 0 {
		t.Fatal("scan found nothing to repair after chunk loss")
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := mgr.WaitIdle(waitCtx); err != nil {
		t.Fatal(err)
	}
	if stats := mgr.Stats(); stats.ChunksRepaired == 0 {
		t.Fatalf("repair stats: %+v", stats)
	}
	if deg := pool.DegradedObjects(); len(deg) != 0 {
		t.Fatalf("still degraded after repair: %+v", deg)
	}
	// Health surface round trip.
	var sawDown bool
	for _, h := range oc.Health() {
		if h.ID == 3 && h.State == sprout.OSDDown {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatal("health snapshot missing the down OSD")
	}
	// TransportStats is addable through the facade.
	var ts sprout.TransportStats
	ts = ts.Add(sprout.TransportStats{FramesSent: 1})
	if ts.FramesSent != 1 {
		t.Fatal("TransportStats alias broken")
	}
}

func TestResilienceFacade(t *testing.T) {
	// Breaker lifecycle through the facade: trip on an error streak, reject
	// while open, and surface the state constants.
	br := sprout.NewBreakerSet(sprout.BreakerConfig{ErrorThreshold: 2, OpenFor: time.Minute})
	if br.State(3) != sprout.BreakerClosed {
		t.Fatalf("fresh breaker state = %v, want closed", br.State(3))
	}
	for i := 0; i < 2; i++ {
		br.Observe(3, fmt.Errorf("boom"), time.Millisecond)
	}
	if br.State(3) != sprout.BreakerOpen {
		t.Fatalf("breaker after error streak = %v, want open", br.State(3))
	}
	if br.Allow(3) {
		t.Fatal("open breaker allowed a request")
	}
	if st := br.Stats(); st.Opens == 0 {
		t.Fatal("breaker stats recorded no trips")
	}

	// Saturation sheds classify as overload, not as node faults.
	if !sprout.IsOverload(sprout.ErrSaturated) {
		t.Fatal("ErrSaturated must classify as overload")
	}

	// Retry budget: retries beyond the bank are denied until successes pay
	// tokens back in.
	rb := sprout.NewRetryBudget(1, 0.1)
	if !rb.Withdraw() {
		t.Fatal("first retry should fit the budget")
	}
	if rb.Withdraw() {
		t.Fatal("empty budget granted a retry")
	}

	// Chaos harness is constructible and runtime-controllable standalone.
	chaos := sprout.NewChaos(1)
	chaos.SetRule(2, sprout.ChaosRule{Latency: time.Millisecond, ErrorRate: 0.5})
	if r, ok := chaos.Rule(2); !ok || r.ErrorRate != 0.5 {
		t.Fatalf("chaos rule round trip = %+v, %v", r, ok)
	}
	chaos.ClearRule(2)
	if _, ok := chaos.Rule(2); ok {
		t.Fatal("cleared chaos rule still present")
	}
}
