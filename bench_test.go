package sprout_test

import (
	"testing"

	"sprout/internal/bench"
)

// The benchmark suite regenerates every table and figure of the paper at a
// reduced scale (bench.Quick) so the whole suite completes in minutes; the
// sproutbench CLI runs the same experiments at paper scale (-paper). Key
// scalar outcomes are attached to each benchmark via ReportMetric so the
// benchmark log doubles as a results table.

func benchConfig() bench.Config {
	cfg := bench.Quick()
	cfg.Files = 100
	cfg.SimHorizon = 3000
	return cfg
}

// BenchmarkFig3Convergence regenerates Fig. 3 (convergence of Algorithm 1).
func BenchmarkFig3Convergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig3Convergence(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		maxIter := 0
		for _, s := range series {
			if s.Iterations > maxIter {
				maxIter = s.Iterations
			}
		}
		b.ReportMetric(float64(maxIter), "max-iterations")
		final := series[len(series)-1].Objectives
		b.ReportMetric(final[len(final)-1], "latency-largest-cache-s")
	}
}

// BenchmarkFig4CacheSize regenerates Fig. 4 (latency vs. cache size).
func BenchmarkFig4CacheSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig4CacheSize(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Latency, "latency-no-cache-s")
		b.ReportMetric(points[len(points)-1].Latency, "latency-full-cache-s")
	}
}

// BenchmarkFig5Evolution regenerates Table I + Fig. 5 (cache evolution).
func BenchmarkFig5Evolution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig5Evolution(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Objectives[len(res.Objectives)-1], "final-bin-latency-s")
	}
}

// BenchmarkFig6Placement regenerates Fig. 6 (placement/arrival interaction).
func BenchmarkFig6Placement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig6Placement(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].ChunksFirstTwo), "hot-file-chunks-low-rate")
		b.ReportMetric(float64(points[len(points)-1].ChunksFirstTwo), "hot-file-chunks-high-rate")
	}
}

// BenchmarkFig7RequestSplit regenerates Fig. 7 (cache vs. storage chunks).
func BenchmarkFig7RequestSplit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := bench.Fig7RequestSplit(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].CacheFraction*100, "cache-chunk-pct")
	}
}

// BenchmarkFig9ServiceCDF regenerates Fig. 9 / Table IV (service times).
func BenchmarkFig9ServiceCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.Fig9ServiceCDF(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.ChunkSizeBytes == 16<<20 {
				b.ReportMetric(r.MeanMillis, "16MB-mean-ms")
			}
		}
	}
}

// BenchmarkTableVCacheLatency regenerates Table V (SSD cache latencies).
func BenchmarkTableVCacheLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableVCacheLatency(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].MeasuredMillis, "16MB-cache-ms")
	}
}

// BenchmarkFig10ObjectSize regenerates Fig. 10 (latency vs. object size,
// optimal caching vs. the LRU cache-tier baseline).
func BenchmarkFig10ObjectSize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.Fig10ObjectSize(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var improvement float64
		for _, r := range results {
			improvement += r.ImprovementPct
		}
		b.ReportMetric(improvement/float64(len(results)), "mean-improvement-pct")
	}
}

// BenchmarkFig11ArrivalRate regenerates Fig. 11 (latency vs. workload
// intensity, optimal caching vs. the LRU cache-tier baseline).
func BenchmarkFig11ArrivalRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.Fig11ArrivalRate(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var improvement float64
		for _, r := range results {
			improvement += r.ImprovementPct
		}
		b.ReportMetric(improvement/float64(len(results)), "mean-improvement-pct")
	}
}

// BenchmarkPolicyAblation runs the caching-policy ablation at a fixed budget.
func BenchmarkPolicyAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := bench.PolicyAblation(benchConfig(), 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Policy == "functional (Algorithm 1)" {
				b.ReportMetric(r.Objective, "functional-bound-s")
			}
			if r.Policy == "no cache" {
				b.ReportMetric(r.Objective, "no-cache-bound-s")
			}
		}
	}
}
