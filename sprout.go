// Package sprout is the public facade of the Sprout functional-caching
// library — a Go reproduction of "Sprout: A Functional Caching Approach to
// Minimize Service Latency in Erasure-Coded Storage" (ICDCS 2016).
//
// The facade re-exports the pieces a downstream user needs to embed Sprout:
// the erasure coder with functional cache-chunk generation, the latency
// model and cache optimizer, the per-compute-server controller, and the
// workload/cluster description types. The heavy machinery lives in the
// internal packages; this package keeps the surface small and stable.
//
// Basic usage:
//
//	clu, _ := sprout.ClusterConfig{NumNodes: 12, NumFiles: 100, N: 7, K: 4,
//	    FileSize: 100 << 20, ServiceRates: sprout.PaperServiceRates()}.Build()
//	ctrl, _ := sprout.NewController(clu, 500, sprout.OptimizerOptions{}, 1)
//	plan, _ := ctrl.PlanTimeBin(clu.Lambdas())
//	data, _ := ctrl.Read(ctx, fileID, fetcher)
package sprout

import (
	"context"

	"sprout/internal/cluster"
	"sprout/internal/core"
	"sprout/internal/erasure"
	"sprout/internal/metrics"
	"sprout/internal/objstore"
	"sprout/internal/obs"
	"sprout/internal/optimizer"
	"sprout/internal/queue"
	"sprout/internal/repair"
	"sprout/internal/resilience"
	"sprout/internal/transport"
)

// Re-exported core types. Aliases keep the internal implementations and the
// public names identical, so the documented behaviour lives in one place.
type (
	// Controller is the per-compute-server Sprout cache controller.
	Controller = core.Controller
	// ChunkFetcher retrieves coded chunks from storage nodes.
	ChunkFetcher = core.ChunkFetcher
	// FetcherFunc adapts a function to the ChunkFetcher interface.
	FetcherFunc = core.FetcherFunc
	// VersionedChunkFetcher is a ChunkFetcher that reports the stripe version
	// each chunk belongs to, letting the controller detect concurrent
	// overwrites instead of decoding mixed-version stripes.
	VersionedChunkFetcher = core.VersionedChunkFetcher
	// StripeInfo names one committed stripe: object version and byte size.
	StripeInfo = core.StripeInfo
	// ObjectWriter stores a complete object for Controller.Write (the ingest
	// path); the transport's StripedWriter is the production implementation.
	ObjectWriter = core.ObjectWriter
	// ObjectWriterFunc adapts a function to the ObjectWriter interface.
	ObjectWriterFunc = core.ObjectWriterFunc
	// FileMeta describes one erasure-coded file.
	FileMeta = core.FileMeta
	// ControllerStats are the controller's observability counters.
	ControllerStats = core.Stats
	// ServeOptions tunes the controller's concurrent serving path: parallel
	// vs sequential chunk fetches, hedged fetches, background fill workers,
	// and the auto-replanner.
	ServeOptions = core.ServeOptions
	// LatencySnapshot summarises one read-latency distribution (p50/p90/p99).
	LatencySnapshot = core.LatencySnapshot
	// ReadLatencyStats splits read-latency percentiles by cache hits versus
	// reads that touched storage.
	ReadLatencyStats = core.ReadLatencyStats

	// Cluster describes storage nodes, files and placement.
	Cluster = cluster.Cluster
	// ClusterConfig builds synthetic clusters.
	ClusterConfig = cluster.Config
	// Node is one storage server.
	Node = cluster.Node
	// File is one erasure-coded file in a cluster.
	File = cluster.File

	// Code is a systematic Reed-Solomon code with reserved functional cache
	// chunks.
	Code = erasure.Code
	// Chunk pairs a coded chunk with its index.
	Chunk = erasure.Chunk

	// OptimizerOptions tunes Algorithm 1.
	OptimizerOptions = optimizer.Options
	// Plan is the optimizer's per-time-bin output.
	Plan = optimizer.Plan
	// Problem is a cache-optimization instance.
	Problem = optimizer.Problem
	// FileSpec describes a file inside a Problem.
	FileSpec = optimizer.FileSpec
	// TenantShare is one tenant's slice of the cache-optimization problem:
	// the files it owns and its weight in the budget split.
	TenantShare = optimizer.TenantShare

	// ServiceDist is a service-time distribution (mean, second and third
	// moments plus a sampler).
	ServiceDist = queue.Dist

	// StorageCluster is the emulated Ceph-like object-store cluster: OSDs
	// with lifecycle states, erasure-coded pools, and the cache tiers.
	StorageCluster = objstore.Cluster
	// StorageConfig describes an emulated storage cluster.
	StorageConfig = objstore.ClusterConfig
	// StoragePool is an erasure-coded pool with health-aware placement.
	StoragePool = objstore.Pool
	// OSD is one emulated object storage daemon.
	OSD = objstore.OSD
	// OSDState is an OSD lifecycle state (Up, Down, Recovering).
	OSDState = objstore.NodeState
	// OSDHealth is a snapshot of one OSD's lifecycle and health counters.
	OSDHealth = objstore.OSDHealth
	// ChunkLocation is the health-aware placement view of one coded chunk.
	ChunkLocation = objstore.ChunkLocation
	// DegradedObject describes an object with unreadable chunks.
	DegradedObject = objstore.DegradedObject

	// RepairManager is the self-healing plane: degradation scans, a
	// fewest-survivors-first repair queue, and a bounded reconstruction
	// worker pool.
	RepairManager = repair.Manager
	// RepairConfig tunes the repair manager.
	RepairConfig = repair.Config
	// RepairStats is a snapshot of the repair plane's progress counters.
	RepairStats = repair.Stats
	// FailureDetector turns per-node error/timeout streaks into membership
	// transitions.
	FailureDetector = repair.Detector
	// DetectorConfig tunes the failure detector.
	DetectorConfig = repair.DetectorConfig

	// TransportStats is a snapshot of a transport client's or server's
	// data-plane counters.
	TransportStats = transport.TransportStats
	// StripedWriter is the client-side ingest path: local SIMD encode,
	// parallel staged chunk writes over pooled connections, two-phase commit.
	StripedWriter = transport.StripedWriter

	// BreakerSet holds one circuit breaker per storage target. Wire it into
	// ServeOptions.Breakers and the read plane demotes tripped nodes out of
	// fetch, hedge, and repair-survivor selection.
	BreakerSet = resilience.BreakerSet
	// BreakerConfig tunes the breakers' trip thresholds and re-open backoff.
	BreakerConfig = resilience.BreakerConfig
	// BreakerState is a breaker's position in the closed → open → half-open
	// cycle.
	BreakerState = resilience.BreakerState
	// BreakerStats counts trips, closes, and rejected probes across a set.
	BreakerStats = resilience.BreakerStats
	// RetryBudget caps cluster-wide retry amplification: retries spend
	// tokens that only successful first attempts replenish.
	RetryBudget = resilience.RetryBudget
	// Backoff is capped exponential backoff with full jitter.
	Backoff = resilience.Backoff
	// AdmissionConfig tunes the controller's saturation gate (queue depth +
	// latency EWMA scoring into progressive brownout levels).
	AdmissionConfig = core.AdmissionConfig
	// AnalyzerConfig tunes the saturation analyzer: a sampling loop that
	// scores measured queue depth and windowed p99 latency and drives the
	// admission gate's brownout level with dwell hysteresis.
	AnalyzerConfig = core.AnalyzerConfig
	// AutoscaleConfig tunes the cache autoscaler: between replans it shrinks
	// cold files' cache allocation (to zero after a cold dwell) and regrows
	// hot or viral files from the freed budget.
	AutoscaleConfig = core.AutoscaleConfig
	// TenantPolicy is one tenant's QoS contract: SLO class, weighted-fair
	// share, optional rate limit, and the files whose cache budget it owns.
	// Wire a set into ServeOptions.Tenants to make tenancy first-class across
	// the read plane, fill scheduler, optimizer, and autoscaler.
	TenantPolicy = core.TenantPolicy
	// TenantSnapshot is one tenant's QoS accounting (reads, sheds, throttles,
	// latency distribution, cache share), from Controller.TenantStats.
	TenantSnapshot = core.TenantSnapshot

	// MetricsRegistry holds registered metric families and renders them in
	// Prometheus text exposition format.
	MetricsRegistry = metrics.Registry
	// MetricsSources selects which planes an observability registry bridges;
	// nil fields are skipped.
	MetricsSources = obs.Sources

	// Chaos injects per-OSD latency, errors, stalls, and partitions into a
	// transport server, runtime-controllable via SetRule/ClearRule.
	Chaos = transport.Chaos
	// ChaosRule is one OSD's fault injection rule.
	ChaosRule = transport.ChaosRule
	// ChaosStats counts the faults a Chaos harness has injected.
	ChaosStats = transport.ChaosStats
)

// OSD lifecycle states.
const (
	OSDUp         = objstore.StateUp
	OSDDown       = objstore.StateDown
	OSDRecovering = objstore.StateRecovering
)

// Circuit-breaker states.
const (
	BreakerClosed   = resilience.BreakerClosed
	BreakerOpen     = resilience.BreakerOpen
	BreakerHalfOpen = resilience.BreakerHalfOpen
)

// Tenant SLO classes, ordered by how the QoS plane degrades them under
// pressure: gold keeps hedging and is never shed, silver sheds only its
// low-value files at the deepest brownout level, bronze sheds first.
const (
	ClassGold     = core.ClassGold
	ClassSilver   = core.ClassSilver
	ClassBronze   = core.ClassBronze
	DefaultTenant = core.DefaultTenant
)

// Resilience sentinels.
var (
	// ErrSaturated is returned by Controller.Read when the admission gate
	// sheds a low-value read under deep saturation. It unwraps to
	// ErrOverload.
	ErrSaturated = core.ErrSaturated
	// ErrOverload classifies push-back (server overload responses, retry
	// budget exhaustion, admission sheds) apart from real faults: overload
	// must count against breakers and retry budgets, never against node
	// health.
	ErrOverload = resilience.ErrOverload
	// ErrTenantThrottled is returned by Controller.Read when the calling
	// tenant is over its configured rate limit. It unwraps to ErrOverload.
	ErrTenantThrottled = core.ErrTenantThrottled
)

// WithTenant returns a context carrying the tenant name; Controller.Read
// resolves it against ServeOptions.Tenants for rate limiting, SLO-ordered
// shedding, priority hedging, and per-tenant accounting.
func WithTenant(ctx context.Context, name string) context.Context {
	return core.WithTenant(ctx, name)
}

// TenantFrom extracts the tenant name from a context ("" when absent).
func TenantFrom(ctx context.Context) string { return core.TenantFrom(ctx) }

// IsOverload reports whether err is load push-back rather than a fault.
func IsOverload(err error) bool { return resilience.IsOverload(err) }

// NewBreakerSet builds a per-target circuit breaker set for
// ServeOptions.Breakers or RepairConfig.Breakers.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet { return resilience.NewBreakerSet(cfg) }

// NewMetricsRegistry bridges the given planes into a metric registry; serve
// its Handler() at /metrics for Prometheus scraping. Collection happens at
// scrape time, so hot paths pay nothing for export.
func NewMetricsRegistry(src MetricsSources) *MetricsRegistry { return obs.NewRegistry(src) }

// NewRetryBudget builds a retry budget: up to maxTokens banked retries,
// refilled at ratio tokens per successful first attempt.
func NewRetryBudget(maxTokens, ratio float64) *RetryBudget {
	return resilience.NewRetryBudget(maxTokens, ratio)
}

// NewChaos builds a fault-injection harness to hang off a transport
// server's ServerConfig.Chaos.
func NewChaos(seed int64) *Chaos { return transport.NewChaos(seed) }

// NewController builds a Sprout controller for a cluster with a functional
// cache of cacheCapacity chunks and default serving options (parallel chunk
// fetches, two background fill workers, no hedging, no auto-replanning).
func NewController(clu *Cluster, cacheCapacity int, opts OptimizerOptions, seed int64) (*Controller, error) {
	return core.NewController(clu, cacheCapacity, opts, seed)
}

// NewControllerWith builds a Sprout controller with explicit serving
// options — hedged fetches, fill-worker sizing, and the auto-replanner that
// re-runs PlanTimeBin when the observed workload drifts.
func NewControllerWith(clu *Cluster, cacheCapacity int, opts OptimizerOptions, serve ServeOptions, seed int64) (*Controller, error) {
	return core.NewControllerWith(clu, cacheCapacity, opts, serve, seed)
}

// NewCode creates an (n, k) storage code with k reserved functional cache
// chunks — an (n+k, k) MDS code overall.
func NewCode(n, k int) (*Code, error) { return erasure.New(n, k) }

// Optimize solves the cache-content optimization (Algorithm 1).
func Optimize(p *Problem, opts OptimizerOptions) (*Plan, error) {
	return optimizer.Optimize(p, opts)
}

// OptimizeSplit solves the cache-content optimization per tenant over a
// weighted partition of the cache budget and merges the plans; the
// controller uses it automatically when ServeOptions.Tenants lists files.
func OptimizeSplit(p *Problem, opts OptimizerOptions, shares []TenantShare) (*Plan, error) {
	return optimizer.OptimizeSplit(p, opts, shares)
}

// ProblemFromCluster converts a cluster description into an optimization
// problem with the given cache capacity (in chunks).
func ProblemFromCluster(clu *Cluster, cacheCapacity int) (*Problem, error) {
	return optimizer.FromCluster(clu, cacheCapacity)
}

// PaperConfig returns the cluster configuration used throughout the paper's
// simulations: 12 heterogeneous servers, 1000 files, (7,4) code, 100 MB
// files.
func PaperConfig() ClusterConfig { return cluster.PaperConfig() }

// PaperServiceRates returns the 12 per-server service rates used in the
// paper's numerical section.
func PaperServiceRates() []float64 {
	return append([]float64(nil), cluster.PaperServiceRates...)
}

// Exponential returns an exponential service-time distribution with rate mu.
func Exponential(mu float64) ServiceDist { return queue.NewExponential(mu) }

// NewStorageCluster builds an emulated object-store cluster.
func NewStorageCluster(cfg StorageConfig) (*StorageCluster, error) {
	return objstore.NewCluster(cfg)
}

// NewRepairManager builds the repair plane over a pool; call Start to
// launch its workers and periodic degradation scan.
func NewRepairManager(pool *StoragePool, cfg RepairConfig) *RepairManager {
	return repair.NewManager(pool, cfg)
}

// NewFailureDetector builds a consecutive-error failure detector; wire its
// OnDown/OnUp callbacks to Controller.SetNodeDown/SetNodeUp to close the
// detection-to-scheduling loop.
func NewFailureDetector(cfg DetectorConfig) *FailureDetector {
	return repair.NewDetector(cfg)
}
