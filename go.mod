module sprout

go 1.24
