module sprout

go 1.23
