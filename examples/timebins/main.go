// Example timebins reproduces the paper's time-varying workload scenario
// end to end: requests arrive according to the Table I rates across three
// time bins, a sliding-window estimator detects the rate changes, and the
// controller re-plans the functional cache at each bin boundary, trimming
// shrunk allocations immediately and filling grown allocations lazily on
// first access.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"sprout"
	"sprout/internal/workload"
)

// nullStore returns zero-filled chunks; this example focuses on cache-plan
// dynamics rather than payload contents.
type nullStore struct{ chunkSize int }

func (s nullStore) FetchChunk(_ context.Context, _, _, _ int) ([]byte, error) {
	return make([]byte, s.chunkSize), nil
}

func main() {
	// The Table I arrival rates are scaled up so that three 200-second bins
	// contain enough requests to drive the estimator; the service rates are
	// scaled by the same factor so per-node utilisation matches the paper's.
	const rateScale = 2000
	serviceRates := sprout.PaperServiceRates()
	for i := range serviceRates {
		serviceRates[i] *= rateScale
	}
	cfg := sprout.ClusterConfig{
		NumNodes:     12,
		NumFiles:     10,
		N:            7,
		K:            4,
		FileSize:     4 << 10,
		ServiceRates: serviceRates,
		Seed:         9,
	}
	clu, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := sprout.NewController(clu, 10, sprout.OptimizerOptions{MaxOuterIter: 15}, 1)
	if err != nil {
		log.Fatal(err)
	}
	store := nullStore{chunkSize: 1 << 10}
	ctx := context.Background()

	schedule := workload.TableISchedule(200)
	for b := range schedule.Bins {
		for i := range schedule.Bins[b].Lambdas {
			schedule.Bins[b].Lambdas[i] *= rateScale
		}
	}
	estimator := workload.NewRateEstimator(10, 100, 0.2)

	rng := rand.New(rand.NewSource(5))
	requests, err := schedule.GenerateSchedule(rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d requests across %d time bins\n", len(requests), len(schedule.Bins))

	// Plan the first bin with its known rates.
	binStart := 0
	if _, err := ctrl.PlanTimeBin(schedule.Bins[0].Lambdas); err != nil {
		log.Fatal(err)
	}
	estimator.StartBin(schedule.Bins[0].Lambdas)
	fmt.Printf("bin 1 allocation: %v\n", ctrl.Plan().D)

	rebins := 0
	for _, req := range requests {
		estimator.Observe(req.Arrival, req.FileID)
		if _, err := ctrl.Read(ctx, req.FileID, store); err != nil {
			log.Fatal(err)
		}
		// Re-plan when the estimator flags a significant rate change (at most
		// once per 100-second window).
		if req.Arrival-float64(binStart) > 100 && estimator.NeedsNewBin(req.Arrival) {
			rates := estimator.Rates(req.Arrival)
			plan, err := ctrl.PlanTimeBin(rates)
			if err != nil {
				log.Fatal(err)
			}
			estimator.StartBin(rates)
			binStart = int(req.Arrival)
			rebins++
			fmt.Printf("re-planned at t=%.0fs: allocation %v (bound %.2f s)\n", req.Arrival, plan.D, plan.Objective)
		}
	}
	ctrl.WaitFills()
	stats := ctrl.Stats()
	fmt.Printf("\n%d plan updates (%d triggered by the estimator)\n", stats.PlanUpdates, rebins)
	fmt.Printf("chunks served from cache: %d, from storage: %d, background cache fills: %d\n",
		stats.ChunksFromCache, stats.ChunksFromDisk, stats.LazyFills)
}
