// Example videocdn models the motivating scenario of the paper's
// introduction: a video-on-demand library where roughly 20% of the titles
// receive 80% of the requests, served from erasure-coded storage with a
// cache at the streaming proxy. It compares the latency bound of Sprout's
// optimized functional cache against caching whole popular videos and
// against having no cache, then serves the workload live through the
// concurrent controller: hedged parallel fetches against an emulated
// storage backend while the auto-replanner watches a previously cold title
// go viral and re-plans the cache on its own.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sprout"
	"sprout/internal/bench"
	"sprout/internal/optimizer"
	"sprout/internal/workload"
)

var (
	hedgeDelay  = flag.Duration("hedge-delay", 3*time.Millisecond, "hedge timer for straggling chunk fetches (0 disables)")
	hedgeExtra  = flag.Int("hedge-extra", 2, "max extra hedged fetches per read")
	fillWorkers = flag.Int("fill-workers", 2, "background cache-fill workers")
	replanEvery = flag.Duration("replan-every", 150*time.Millisecond, "auto-replanner tick (0 disables)")
	replanTh    = flag.Float64("replan-threshold", 0.5, "relative rate drift that triggers a replan")
	serveFor    = flag.Duration("serve", 2*time.Second, "how long to serve live traffic")
	readers     = flag.Int("readers", 8, "concurrent reader goroutines")
)

func main() {
	flag.Parse()
	const (
		numVideos  = 120
		cacheSize  = 150 // chunks
		videoBytes = 200 << 20
	)
	cfg := sprout.ClusterConfig{
		NumNodes:     12,
		NumFiles:     numVideos,
		N:            7,
		K:            4,
		FileSize:     videoBytes,
		ServiceRates: sprout.PaperServiceRates(),
		Seed:         3,
	}
	clu, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Zipf popularity: a small head of titles dominates the request stream.
	// The aggregate rate is chosen so the cluster is heavily loaded but still
	// stable even without a cache (the no-cache baseline must be feasible).
	lambdas := workload.Zipf(numVideos, 1.1, 0.22)
	clu, err = clu.WithArrivalRates(lambdas)
	if err != nil {
		log.Fatal(err)
	}

	prob, err := sprout.ProblemFromCluster(clu, cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	opts := sprout.OptimizerOptions{MaxOuterIter: 15}

	functional, err := sprout.Optimize(prob, opts)
	if err != nil {
		log.Fatal(err)
	}
	wholeFile, err := optimizer.WholeFileCaching(prob, opts)
	if err != nil {
		log.Fatal(err)
	}
	noCache, err := optimizer.NoCache(prob, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("video CDN, 120 titles, Zipf(1.1) popularity, cache = 150 chunks")
	fmt.Printf("  no cache:             %.2f s mean latency bound\n", noCache.Objective)
	fmt.Printf("  whole-video caching:  %.2f s (caches %d chunks)\n", wholeFile.Objective, wholeFile.CacheUsed())
	fmt.Printf("  Sprout functional:    %.2f s (caches %d chunks)\n", functional.Objective, functional.CacheUsed())

	hot := 0
	for i := 0; i < 10; i++ {
		hot += functional.D[i]
	}
	fmt.Printf("  chunks cached for the 10 hottest titles: %d of %d\n", hot, functional.CacheUsed())

	// A previously cold title goes viral: re-plan the next time bin with the
	// new rates, warm-starting from the current allocation.
	viral := numVideos - 1
	lambdas[viral] = 0.05
	clu2, err := clu.WithArrivalRates(lambdas)
	if err != nil {
		log.Fatal(err)
	}
	prob2, err := sprout.ProblemFromCluster(clu2, cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	opts.WarmStart = functional.D
	replanned, err := sprout.Optimize(prob2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter title %d goes viral (0.05 req/s):\n", viral)
	fmt.Printf("  new bound %.2f s; viral title now holds %d cache chunks (was %d)\n",
		replanned.Objective, replanned.D[viral], functional.D[viral])

	serveLive()
}

// serveLive drives the concurrent serving path: Zipf traffic over a scaled-
// down library, a mid-run popularity flip to the viral title, and the
// auto-replanner adapting the cache plan without any manual PlanTimeBin.
func serveLive() {
	const (
		titles    = 40
		cacheSize = 50
		titleSize = 256 << 10
	)
	fmt.Printf("\nserving live traffic (%d titles, %v, %d readers, hedge %v +%d, replan every %v):\n",
		titles, *serveFor, *readers, *hedgeDelay, *hedgeExtra, *replanEvery)

	// The auto-replanner feeds *measured* request rates (thousands of reads
	// per second) into the optimizer, so the node service rates must be on
	// the same scale or every re-plan would be rejected as unstable. Scale
	// the paper's relative rates up to emulated-hardware speed.
	const rateScale = 1e5
	serviceRates := sprout.PaperServiceRates()
	for i := range serviceRates {
		serviceRates[i] *= rateScale
	}
	cfg := sprout.ClusterConfig{
		NumNodes:     12,
		NumFiles:     titles,
		N:            7,
		K:            4,
		FileSize:     titleSize,
		ServiceRates: serviceRates,
		Seed:         4,
	}
	clu, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	lambdas := workload.Zipf(titles, 1.1, 100)
	clu, err = clu.WithArrivalRates(lambdas)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := sprout.NewControllerWith(clu, cacheSize, sprout.OptimizerOptions{MaxOuterIter: 10},
		sprout.ServeOptions{
			HedgeDelay:      *hedgeDelay,
			HedgeExtra:      *hedgeExtra,
			FillWorkers:     *fillWorkers,
			ReplanInterval:  *replanEvery,
			ReplanThreshold: *replanTh,
		}, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()

	// Encode the library into an emulated store whose per-fetch service time
	// (0.3ms + Exp(0.5ms), 3% stragglers at 10x) gives hedging tails to beat.
	chunks := make([][][]byte, titles)
	originals := make([][]byte, titles)
	rng := rand.New(rand.NewSource(9))
	for _, meta := range ctrl.Files() {
		payload := make([]byte, meta.SizeBytes)
		rng.Read(payload)
		originals[meta.ID] = payload
		dataChunks, err := meta.Code.Split(payload)
		if err != nil {
			log.Fatal(err)
		}
		chunks[meta.ID], err = meta.Code.Encode(dataChunks)
		if err != nil {
			log.Fatal(err)
		}
	}
	store := bench.NewLatencyStore(chunks, 8, 300*time.Microsecond, 500*time.Microsecond, 0.03, 10)
	if _, err := ctrl.PlanTimeBin(lambdas); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := ctrl.PrefetchCache(ctx, store); err != nil {
		log.Fatal(err)
	}

	// Halfway through, the coldest title goes viral: readers flip most of
	// their traffic onto it and the auto-replanner must catch the drift —
	// and the publisher re-ingests the title (a re-encode of the mezzanine)
	// mid-run through Controller.Write, which stripes the new content into
	// the store under a fresh version and refreshes the functional cache by
	// write-through. Reads racing the re-ingest must return either cut in
	// full, never a mix.
	viral := titles - 1
	var goneViral atomic.Bool
	// allowedViral holds the payloads a viral-title read may legally return
	// while the re-ingest is in flight.
	var allowedViral atomic.Pointer[[][]byte]
	allowedViral.Store(&[][]byte{originals[viral]})
	var reingested atomic.Bool
	storeWriter := sprout.ObjectWriterFunc(func(ctx context.Context, fileID int, data []byte) (uint64, error) {
		meta := ctrl.Files()[fileID]
		dataChunks, err := meta.Code.Split(data)
		if err != nil {
			return 0, err
		}
		coded, err := meta.Code.Encode(dataChunks)
		if err != nil {
			return 0, err
		}
		return store.SetFile(fileID, coded, len(data)), nil
	})
	time.AfterFunc(*serveFor/2, func() {
		goneViral.Store(true)
		newCut := make([]byte, titleSize)
		rand.New(rand.NewSource(99)).Read(newCut)
		allowedViral.Store(&[][]byte{originals[viral], newCut})
		if err := ctrl.Write(ctx, viral, newCut, storeWriter); err != nil {
			log.Fatal(err)
		}
		originals[viral] = newCut
		reingested.Store(true)
	})

	stop := time.Now().Add(*serveFor)
	picker := workload.NewRatePicker(lambdas)
	var wg sync.WaitGroup
	var readsDone atomic.Int64
	for w := 0; w < *readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 20))
			for time.Now().Before(stop) {
				title := picker.Pick(r.Float64())
				if goneViral.Load() && r.Float64() < 0.6 {
					title = viral
				}
				got, err := ctrl.Read(ctx, title, store)
				if err != nil {
					log.Fatal(err)
				}
				if title == viral {
					okAny := false
					for _, want := range *allowedViral.Load() {
						if bytes.Equal(got, want) {
							okAny = true
							break
						}
					}
					if !okAny {
						log.Fatalf("title %d served bytes matching neither cut (mixed stripe?)", title)
					}
				} else if !bytes.Equal(got, originals[title]) {
					log.Fatalf("title %d content mismatch", title)
				}
				readsDone.Add(1)
			}
		}(w)
	}
	wg.Wait()
	ctrl.WaitFills()

	// After the re-ingest committed, a fresh read must serve the new cut.
	if reingested.Load() {
		got, err := ctrl.Read(ctx, viral, store)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, originals[viral]) {
			log.Fatal("viral title still serves the old cut after re-ingest")
		}
	}

	stats := ctrl.Stats()
	lat := ctrl.ReadLatency()
	fmt.Printf("  served %d reads (%.0f/s): %d auto-replans (%d rejected), %d background fills, %d hedges (%d wins)\n",
		readsDone.Load(), float64(readsDone.Load())/serveFor.Seconds(),
		stats.AutoReplans, stats.ReplanErrors, stats.LazyFills, stats.HedgesLaunched, stats.HedgeWins)
	if reingested.Load() {
		wlat := ctrl.WriteLatency()
		fmt.Printf("  re-ingested viral title mid-run: %d write(s) in p50 %v, %d cache chunks invalidated, %d written through, %d stale-cache reloads, %d read retries\n",
			stats.Writes, wlat.P50, stats.CacheInvalidations, stats.WriteThroughChunks, stats.StaleCacheReloads, stats.ReadRetries)
	}
	fmt.Printf("  cache-hit reads: %6d  p50 %8v  p99 %8v\n",
		lat.CacheHit.Count, lat.CacheHit.P50, lat.CacheHit.P99)
	fmt.Printf("  storage reads:   %6d  p50 %8v  p99 %8v\n",
		lat.Storage.Count, lat.Storage.P50, lat.Storage.P99)
	fmt.Printf("  viral title now holds %d cache chunks (planned %d)\n",
		ctrl.Cache().ChunksForFile(viral), ctrl.CacheAllocationTarget(viral))
}
