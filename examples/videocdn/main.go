// Example videocdn models the motivating scenario of the paper's
// introduction: a video-on-demand library where roughly 20% of the titles
// receive 80% of the requests, served from erasure-coded storage with a
// cache at the streaming proxy. It compares the latency bound of Sprout's
// optimized functional cache against caching whole popular videos and
// against having no cache, then shows how the plan shifts when a new title
// goes viral.
package main

import (
	"fmt"
	"log"

	"sprout"
	"sprout/internal/optimizer"
	"sprout/internal/workload"
)

func main() {
	const (
		numVideos  = 120
		cacheSize  = 150 // chunks
		videoBytes = 200 << 20
	)
	cfg := sprout.ClusterConfig{
		NumNodes:     12,
		NumFiles:     numVideos,
		N:            7,
		K:            4,
		FileSize:     videoBytes,
		ServiceRates: sprout.PaperServiceRates(),
		Seed:         3,
	}
	clu, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Zipf popularity: a small head of titles dominates the request stream.
	// The aggregate rate is chosen so the cluster is heavily loaded but still
	// stable even without a cache (the no-cache baseline must be feasible).
	lambdas := workload.Zipf(numVideos, 1.1, 0.22)
	clu, err = clu.WithArrivalRates(lambdas)
	if err != nil {
		log.Fatal(err)
	}

	prob, err := sprout.ProblemFromCluster(clu, cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	opts := sprout.OptimizerOptions{MaxOuterIter: 15}

	functional, err := sprout.Optimize(prob, opts)
	if err != nil {
		log.Fatal(err)
	}
	wholeFile, err := optimizer.WholeFileCaching(prob, opts)
	if err != nil {
		log.Fatal(err)
	}
	noCache, err := optimizer.NoCache(prob, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("video CDN, 120 titles, Zipf(1.1) popularity, cache = 150 chunks")
	fmt.Printf("  no cache:             %.2f s mean latency bound\n", noCache.Objective)
	fmt.Printf("  whole-video caching:  %.2f s (caches %d chunks)\n", wholeFile.Objective, wholeFile.CacheUsed())
	fmt.Printf("  Sprout functional:    %.2f s (caches %d chunks)\n", functional.Objective, functional.CacheUsed())

	hot := 0
	for i := 0; i < 10; i++ {
		hot += functional.D[i]
	}
	fmt.Printf("  chunks cached for the 10 hottest titles: %d of %d\n", hot, functional.CacheUsed())

	// A previously cold title goes viral: re-plan the next time bin with the
	// new rates, warm-starting from the current allocation.
	viral := numVideos - 1
	lambdas[viral] = 0.05
	clu2, err := clu.WithArrivalRates(lambdas)
	if err != nil {
		log.Fatal(err)
	}
	prob2, err := sprout.ProblemFromCluster(clu2, cacheSize)
	if err != nil {
		log.Fatal(err)
	}
	opts.WarmStart = functional.D
	replanned, err := sprout.Optimize(prob2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter title %d goes viral (0.05 req/s):\n", viral)
	fmt.Printf("  new bound %.2f s; viral title now holds %d cache chunks (was %d)\n",
		replanned.Objective, replanned.D[viral], functional.D[viral])
}
