// Example quickstart shows the core Sprout workflow in a few dozen lines:
// build a small cluster, encode files, compute a cache plan for the current
// workload, and read files back through the functional cache.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"sprout"
)

// memStore is a minimal in-memory ChunkFetcher used as the "storage nodes"
// in this example.
type memStore map[int]map[int][]byte

func (m memStore) FetchChunk(_ context.Context, fileID, chunkIndex, _ int) ([]byte, error) {
	chunk, ok := m[fileID][chunkIndex]
	if !ok {
		return nil, fmt.Errorf("missing chunk %d of file %d", chunkIndex, fileID)
	}
	return chunk, nil
}

func main() {
	// 1. Describe a cluster: 6 storage nodes, 10 files, (5,3) erasure code.
	cfg := sprout.ClusterConfig{
		NumNodes:     6,
		NumFiles:     10,
		N:            5,
		K:            3,
		FileSize:     3 * 1024,
		ServiceRates: []float64{1.0, 1.0, 0.8, 0.8, 0.5, 0.5},
		ArrivalRates: []float64{0.12, 0.02},
		Seed:         42,
	}
	clu, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a controller with a cache of 8 functional chunks.
	ctrl, err := sprout.NewController(clu, 8, sprout.OptimizerOptions{}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Encode file contents onto the (in-memory) storage nodes.
	store := memStore{}
	originals := map[int][]byte{}
	rng := rand.New(rand.NewSource(7))
	for _, meta := range ctrl.Files() {
		payload := make([]byte, meta.SizeBytes)
		rng.Read(payload)
		originals[meta.ID] = payload
		dataChunks, err := meta.Code.Split(payload)
		if err != nil {
			log.Fatal(err)
		}
		coded, err := meta.Code.Encode(dataChunks)
		if err != nil {
			log.Fatal(err)
		}
		store[meta.ID] = map[int][]byte{}
		for i, ch := range coded {
			store[meta.ID][i] = ch
		}
	}

	// 4. Plan the cache for the current arrival rates (one "time bin").
	plan, err := ctrl.PlanTimeBin(clu.Lambdas())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency bound: %.3f s, cache chunks used: %d / 8\n", plan.Objective, plan.CacheUsed())
	fmt.Printf("cache allocation per file: %v\n", plan.D)

	// 5. Read every file twice: the first read enqueues background fills of
	// the planned functional chunks, the second read uses them. WaitFills
	// drains the background materialisation pool so the second pass sees a
	// warm cache.
	ctx := context.Background()
	for pass := 1; pass <= 2; pass++ {
		for fileID, want := range originals {
			got, err := ctrl.Read(ctx, fileID, store)
			if err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				log.Fatalf("file %d content mismatch", fileID)
			}
		}
		ctrl.WaitFills()
		stats := ctrl.Stats()
		fmt.Printf("after pass %d: reads=%d chunks from cache=%d, from storage=%d\n",
			pass, stats.Reads, stats.ChunksFromCache, stats.ChunksFromDisk)
	}
}
