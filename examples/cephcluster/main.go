// Example cephcluster runs the emulated Ceph-like object store over TCP: it
// starts a storage server, creates the (7, 4-d) equivalent-code pools the
// paper's prototype uses, writes a working set through the client, and
// compares read latency through the LRU cache tier against functional
// caching with different numbers of cached chunks.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"sprout/internal/objstore"
	"sprout/internal/queue"
	"sprout/internal/transport"
)

func main() {
	const (
		objectSize = 512 << 10
		numObjects = 12
	)
	cluster, err := objstore.NewCluster(objstore.ClusterConfig{
		NumOSDs:            12,
		Services:           []queue.Dist{queue.ShiftedExponential{Shift: 0.004, Rate: 250}},
		RefChunkSize:       objectSize / 4,
		CacheService:       queue.Deterministic{Value: 0.0008},
		CacheCapacityBytes: numObjects * objectSize / 2,
		Seed:               11,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := cluster.CreatePool("ec-7-4", 7, 4)
	if err != nil {
		log.Fatal(err)
	}
	pools, err := cluster.CreateEquivalentPools("eq", 7, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the store over TCP and talk to it through the client, so the
	// whole network + encode/decode path is exercised.
	srv := transport.NewServer(cluster)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	// The pooled client multiplexes concurrent writes over two connections.
	client, err := transport.DialConfig(addr, transport.ClientConfig{
		Conns:       2,
		DialTimeout: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fmt.Printf("object store serving on %s\n", addr)

	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))
	payload := make([]byte, objectSize)
	for i := 0; i < numObjects; i++ {
		rng.Read(payload)
		name := fmt.Sprintf("video-%02d", i)
		if _, err := client.Put(ctx, "ec-7-4", name, payload); err != nil {
			log.Fatal(err)
		}
		// Equivalent-code methodology (Section V-C of the paper): with d
		// chunks in cache, a read is equivalent to fetching only the
		// remaining (4-d)/4 of the object from a (7, 4-d) pool with the same
		// chunk size, so each eq-d pool stores that prefix of the object.
		for d := 0; d < 4; d++ {
			portion := payload[:objectSize*(4-d)/4]
			if _, err := client.Put(ctx, fmt.Sprintf("eq-%d", d), name, portion); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("wrote %d objects of %d KiB through the TCP client\n", numObjects, objectSize>>10)

	// Read latency through the LRU cache tier (first cold, then warm).
	meanLRU := func() time.Duration {
		var total time.Duration
		for i := 0; i < numObjects; i++ {
			_, lat, err := cluster.ReadThroughLRU(ctx, base, fmt.Sprintf("video-%02d", i))
			if err != nil {
				log.Fatal(err)
			}
			total += lat
		}
		return total / numObjects
	}
	cold := meanLRU()
	warm := meanLRU()

	// Functional caching: read through the equivalent (7, 4-d) pools.
	for _, d := range []int{0, 1, 2, 3} {
		var total time.Duration
		for i := 0; i < numObjects; i++ {
			_, lat, err := cluster.ReadFunctional(ctx, pools, fmt.Sprintf("video-%02d", i), d, 4, objectSize)
			if err != nil {
				log.Fatal(err)
			}
			total += lat
		}
		fmt.Printf("functional caching d=%d: mean read latency %v\n", d, total/numObjects)
	}
	fmt.Printf("LRU cache tier:         cold %v, warm %v\n", cold, warm)
	hits, misses, evictions := cluster.CacheTier().Stats()
	fmt.Printf("LRU tier stats: %d hits, %d misses, %d evictions\n", hits, misses, evictions)
	cs, ss := client.Stats(), srv.Stats()
	fmt.Printf("client transport stats: %d frames / %d KiB sent, %d frames / %d KiB received, %d conns, %d retries\n",
		cs.FramesSent, cs.BytesSent>>10, cs.FramesReceived, cs.BytesReceived>>10,
		cs.ConnsOpened, cs.Retries)
	fmt.Printf("server transport stats: %d requests, %d overload rejections, %d decode errors\n",
		ss.Requests, ss.OverloadRejections, ss.DecodeErrors)
}
