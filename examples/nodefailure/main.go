// Example nodefailure runs the classic erasure-store failure drill on the
// emulated cluster, end to end through the self-healing plane:
//
//  1. Objects are written into a (7,4) pool over 12 OSDs and served through
//     the Sprout controller with a warm functional cache.
//  2. Two OSDs are killed under live load, losing their chunks. Nobody
//     tells the controller: the failure detector notices the error streaks
//     on the read path and flips the nodes out of the scheduler's draws,
//     while reads keep succeeding — degraded — via failover and the cache.
//  3. The repair plane reconstructs every lost chunk from survivors with
//     the erasure coder and re-places them on live OSDs, restoring full
//     redundancy while traffic continues.
//  4. The failed OSDs come back; the liveness prober feeds the detector,
//     which returns them to the scheduler, and the repair plane promotes
//     them from Recovering to Up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sprout"
	"sprout/internal/optimizer"
	"sprout/internal/workload"
)

var (
	objects  = flag.Int("objects", 24, "objects written into the pool")
	objSize  = flag.Int("size", 256<<10, "object size in bytes")
	readers  = flag.Int("readers", 8, "concurrent reader goroutines")
	phaseLen = flag.Duration("phase", 700*time.Millisecond, "length of each serving phase")
)

func main() {
	flag.Parse()
	ctx := context.Background()

	// --- Storage plane: 12 OSDs, (7,4) pool, 24 objects. -----------------
	oc, err := sprout.NewStorageCluster(sprout.StorageConfig{
		NumOSDs:      12,
		Services:     []sprout.ServiceDist{sprout.Exponential(600)},
		RefChunkSize: int64(*objSize / 4),
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	pool, err := oc.CreatePool("ec-7-4", 7, 4)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, *objSize)
	objName := func(fileID int) string { return fmt.Sprintf("file-%04d", fileID) }
	for i := 0; i < *objects; i++ {
		rng.Read(payload)
		if err := pool.Put(ctx, objName(i), payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote %d objects of %d KiB into ec-7-4 over 12 OSDs\n", *objects, *objSize>>10)

	// --- Control plane: controller over the pool's real topology. --------
	lambdas := workload.Zipf(*objects, 1.1, 50)
	view, err := pool.ClusterView(lambdas)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := sprout.NewControllerWith(view, 2**objects, optimizer.Options{MaxOuterIter: 10},
		sprout.ServeOptions{
			HedgeDelay: 20 * time.Millisecond, HedgeExtra: 1,
			// With the auto-replanner on, a membership change triggers an
			// immediate PlanTimeBin against the degraded node set.
			ReplanInterval: 300 * time.Millisecond, ReplanThreshold: 0.5,
		}, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()

	// --- Self-healing plane: repair manager + failure detector. ----------
	mgr := sprout.NewRepairManager(pool, sprout.RepairConfig{
		Workers:      2,
		ScanInterval: 50 * time.Millisecond,
	})
	mgr.Start()
	defer mgr.Close()
	det := sprout.NewFailureDetector(sprout.DetectorConfig{
		ErrorThreshold: 3,
		OnDown: func(osdID int) {
			fmt.Printf("  detector: OSD %d DOWN -> excluded from scheduling, repair kicked\n", osdID)
			ctrl.SetNodeDown(osdID)
			mgr.Kick()
		},
		OnUp: func(osdID int) {
			fmt.Printf("  detector: OSD %d UP -> back in scheduling\n", osdID)
			ctrl.SetNodeUp(osdID)
		},
	})

	// The fetcher feeds every chunk-read outcome into the detector — the
	// serving path doubles as the failure signal, no separate monitoring.
	fetcher := sprout.FetcherFunc(func(ctx context.Context, fileID, chunkIndex, nodeID int) ([]byte, error) {
		data, err := pool.GetChunk(ctx, objName(fileID), chunkIndex)
		det.Observe(nodeID, err, 0)
		return data, err
	})

	// A liveness prober (heartbeats) lets the detector see recoveries even
	// while the scheduler sends the node no traffic.
	stopProbe := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		ticker := time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopProbe:
				return
			case <-ticker.C:
				for _, id := range det.DownNodes() {
					osd, err := oc.OSD(id)
					if err != nil {
						continue
					}
					if osd.State() != sprout.OSDDown {
						det.Observe(id, nil, 0)
					}
				}
			}
		}
	}()
	defer func() { close(stopProbe); probeWG.Wait() }()

	if _, err := ctrl.PlanTimeBin(lambdas); err != nil {
		log.Fatal(err)
	}
	if err := ctrl.PrefetchCache(ctx, fetcher); err != nil {
		log.Fatal(err)
	}

	// --- Serve live traffic across the failure/recovery phases. ----------
	picker := workload.NewRatePicker(lambdas)
	var stop atomic.Bool
	var reads, readErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < *readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 17))
			for !stop.Load() {
				if _, err := ctrl.Read(ctx, picker.Pick(r.Float64()), fetcher); err != nil {
					readErrs.Add(1)
					continue
				}
				reads.Add(1)
			}
		}(w)
	}

	phase := func(name string) {
		fmt.Printf("--- %s\n", name)
		time.Sleep(*phaseLen)
	}

	phase("phase 1: healthy serving")

	fmt.Println("--- phase 2: killing OSDs 3 and 7 (chunks lost), load continues")
	if err := oc.FailOSDs(true, 3, 7); err != nil {
		log.Fatal(err)
	}
	time.Sleep(*phaseLen)

	// Wait (while serving) until the repair plane reports full redundancy.
	healStart := time.Now()
	for len(pool.DegradedObjects()) > 0 && time.Since(healStart) < 30*time.Second {
		time.Sleep(20 * time.Millisecond)
	}
	rs := mgr.Stats()
	fmt.Printf("  repair: %d chunks (%d KiB) reconstructed in %v wall, %d objects degraded\n",
		rs.ChunksRepaired, rs.BytesRepaired>>10, time.Since(healStart).Round(time.Millisecond),
		len(pool.DegradedObjects()))

	fmt.Println("--- phase 3: OSDs 3 and 7 recover")
	if err := oc.RecoverOSDs(3, 7); err != nil {
		log.Fatal(err)
	}
	time.Sleep(*phaseLen)

	stop.Store(true)
	wg.Wait()
	ctrl.WaitFills()

	// --- Wrap-up. ---------------------------------------------------------
	stats := ctrl.Stats()
	lat := ctrl.ReadLatency()
	fmt.Printf("served %d reads (%d errors) across healthy, degraded and recovery phases\n",
		reads.Load(), readErrs.Load())
	fmt.Printf("  cache hits: %d (p99 %v), storage: %d (p99 %v), degraded: %d (p99 %v)\n",
		lat.CacheHit.Count, lat.CacheHit.P99,
		lat.Storage.Count, lat.Storage.P99,
		lat.Degraded.Count, lat.Degraded.P99)
	fmt.Printf("  failovers: %d, cache rescues: %d, membership changes: %d, auto-replans: %d\n",
		stats.FetchFailovers, stats.CacheRescues, stats.MembershipChanges, stats.AutoReplans)
	fmt.Printf("  detector down list at exit: %v (empty = all healthy)\n", det.DownNodes())
	for _, h := range oc.Health() {
		if h.State != sprout.OSDUp {
			fmt.Printf("  OSD %d still %v\n", h.ID, h.State)
		}
	}
	fmt.Println("done: failures detected from the read path, reads served throughout, redundancy restored")
}
